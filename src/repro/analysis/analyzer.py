"""Parse modules once, run every rule, filter suppressions.

:func:`analyze_source` is the core entry point: one parse, one
:class:`ModuleContext` shared by every rule (with a lazily built parent map
so rules can walk *up* the tree — "is this ``wait()`` inside a ``while``
loop" questions), findings filtered through the per-line
``# repro: ignore[rule]`` table and returned sorted by location.

A file that does not parse yields a single ``parse-error`` pseudo-finding
instead of crashing the run: an unparseable file in ``src`` must fail the
CI gate, not dodge it.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, all_rules
from repro.analysis.suppressions import is_suppressed, suppressed_rules

#: rule name reserved for files the parser rejects (not suppressible by a
#: registered rule since the suppression table itself needs a parseable
#: line, but a bare ``# repro: ignore`` on the offending line still works).
PARSE_ERROR_RULE = "parse-error"


@dataclass
class ModuleContext:
    """One parsed module plus the shared lookups rules need."""

    path: str
    source: str
    tree: ast.Module
    _parents: "dict[ast.AST, ast.AST]" = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                self._parents[child] = node

    def parent(self, node: ast.AST) -> "ast.AST | None":
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> "Iterator[ast.AST]":
        """Walk from ``node``'s parent up to the module root."""
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def functions(self) -> "Iterator[ast.FunctionDef | ast.AsyncFunctionDef]":
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    def classes(self) -> "Iterator[ast.ClassDef]":
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ClassDef):
                yield node

    def finding(self, node: ast.AST, rule: str, message: str) -> Finding:
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule,
            message=message,
        )


def walk_scope(node: ast.AST) -> "Iterator[ast.AST]":
    """Walk ``node``'s subtree without descending into nested scopes.

    A ``yield`` or lock acquisition inside a nested ``def``/``lambda``/
    ``class`` body executes in *that* scope, not the enclosing one, so
    scope-sensitive rules must not attribute it to the outer function.
    The root node itself is not yielded.
    """
    stack = list(ast.iter_child_nodes(node))
    while stack:
        current = stack.pop()
        yield current
        if isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(current))


def analyze_source(
    source: str, path: str = "<string>", rules: "Sequence[Rule] | None" = None
) -> "list[Finding]":
    """Run ``rules`` (default: all registered) over one module's source."""
    if rules is None:
        rules = all_rules()
    table = suppressed_rules(source)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        finding = Finding(
            path=path,
            line=exc.lineno or 1,
            col=(exc.offset or 0) + 1,
            rule=PARSE_ERROR_RULE,
            message=f"file does not parse: {exc.msg}",
        )
        if is_suppressed(table, finding.line, finding.rule):
            return []
        return [finding]
    ctx = ModuleContext(path=path, source=source, tree=tree)
    findings: "list[Finding]" = []
    for rule in rules:
        for finding in rule.check(ctx):
            if not is_suppressed(table, finding.line, finding.rule):
                findings.append(finding)
    return sorted(findings)


def analyze_file(path: str, rules: "Sequence[Rule] | None" = None) -> "list[Finding]":
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    return analyze_source(source, path=path, rules=rules)


def iter_python_files(paths: Iterable[str]) -> "Iterator[str]":
    """Expand files and directories into a sorted stream of ``.py`` paths."""
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in ("__pycache__", ".git")
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        yield os.path.join(dirpath, name)
        else:
            yield path


def analyze_paths(
    paths: Iterable[str], rules: "Sequence[Rule] | None" = None
) -> "tuple[list[Finding], int]":
    """Analyze every ``.py`` file under ``paths``; ``(findings, n_files)``."""
    if rules is None:
        rules = all_rules()
    findings: "list[Finding]" = []
    n_files = 0
    for filepath in iter_python_files(paths):
        n_files += 1
        findings.extend(analyze_file(filepath, rules=rules))
    return sorted(findings), n_files
