"""Directed, weighted graph storage backed by scipy CSR matrices.

This is the substrate every ranking measure in the library walks on.  A
:class:`DiGraph` is immutable once built (use
:class:`repro.graph.builder.GraphBuilder` to construct one, or the dataset
generators in :mod:`repro.datasets`).  It exposes:

- raw edge weights ``W`` (CSR, shape ``n x n``),
- the row-stochastic transition matrix ``P`` with ``P[u, v]`` the one-step
  probability :math:`M_{uv}` of the paper (Sect. III-B),
- fast per-node access to out-edges and in-edges *with transition
  probabilities*, which the top-K machinery (Sect. V) uses for local
  expansion without touching the full matrix.

Dangling nodes (no out-edges) receive a self-loop with probability one in
``P`` so that random walks are always well defined; the dataset generators
never produce dangling nodes, but user-built graphs might.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np
import scipy.sparse as sp

from repro.utils.validation import check_node_id


class DiGraph:
    """An immutable directed weighted graph.

    Parameters
    ----------
    weights:
        An ``n x n`` scipy sparse matrix of non-negative edge weights.
        ``weights[u, v] > 0`` means there is an arc ``u -> v``.  Undirected
        edges are represented as two arcs (the builder does this).
    labels:
        Optional human-readable node labels, ``labels[v]`` for node ``v``.
    node_types:
        Optional integer type code per node (e.g. paper/author/term/venue).
    type_names:
        Optional names for the type codes; ``type_names[code]``.
    """

    def __init__(
        self,
        weights: sp.spmatrix,
        labels: "Sequence[str] | None" = None,
        node_types: "np.ndarray | Sequence[int] | None" = None,
        type_names: "Sequence[str] | None" = None,
    ) -> None:
        weights = sp.csr_matrix(weights, dtype=np.float64)
        if weights.shape[0] != weights.shape[1]:
            raise ValueError(f"weights must be square, got shape {weights.shape}")
        if weights.nnz and weights.data.min() < 0:
            raise ValueError("edge weights must be non-negative")
        weights.eliminate_zeros()
        weights.sort_indices()
        self._weights = weights
        self._n = weights.shape[0]

        if labels is not None and len(labels) != self._n:
            raise ValueError(f"labels has length {len(labels)}, expected {self._n}")
        self._labels = list(labels) if labels is not None else None
        self._label_index: "dict[str, int] | None" = None

        if node_types is not None:
            node_types = np.asarray(node_types, dtype=np.int32)
            if node_types.shape != (self._n,):
                raise ValueError(f"node_types has shape {node_types.shape}, expected ({self._n},)")
        self._node_types = node_types
        self._type_names = list(type_names) if type_names is not None else None

        self._transition: "sp.csr_matrix | None" = None
        self._transition_csc: "sp.csc_matrix | None" = None
        self._weights_csc: "sp.csc_matrix | None" = None

    # ------------------------------------------------------------------ #
    # Basic shape and metadata
    # ------------------------------------------------------------------ #

    @property
    def n_nodes(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def n_edges(self) -> int:
        """Number of directed arcs (an undirected edge counts twice)."""
        return self._weights.nnz

    @property
    def weights(self) -> sp.csr_matrix:
        """Raw edge-weight matrix (CSR).  Do not mutate."""
        return self._weights

    @property
    def labels(self) -> "list[str] | None":
        """Node labels, or ``None`` if the graph is unlabeled."""
        return self._labels

    @property
    def node_types(self) -> "np.ndarray | None":
        """Per-node integer type codes, or ``None`` for untyped graphs."""
        return self._node_types

    @property
    def type_names(self) -> "list[str] | None":
        """Names of the node-type codes, or ``None``."""
        return self._type_names

    def label_of(self, node: int) -> str:
        """Human-readable label of ``node`` (falls back to ``str(node)``)."""
        node = check_node_id(node, self._n)
        if self._labels is None:
            return str(node)
        return self._labels[node]

    def node_by_label(self, label: str) -> int:
        """Look up a node id by its label.  Raises ``KeyError`` if absent."""
        if self._labels is None:
            raise KeyError("graph has no labels")
        if self._label_index is None:
            self._label_index = {lab: i for i, lab in enumerate(self._labels)}
        return self._label_index[label]

    def type_code(self, type_name: str) -> int:
        """Integer code of a node-type name.  Raises ``KeyError`` if absent."""
        if self._type_names is None:
            raise KeyError("graph has no node types")
        try:
            return self._type_names.index(type_name)
        except ValueError:
            raise KeyError(f"unknown node type {type_name!r}") from None

    def nodes_of_type(self, type_name: str) -> np.ndarray:
        """All node ids whose type is ``type_name``."""
        code = self.type_code(type_name)
        assert self._node_types is not None
        return np.flatnonzero(self._node_types == code)

    def type_mask(self, type_name: str) -> np.ndarray:
        """Boolean mask (length ``n_nodes``) selecting nodes of ``type_name``."""
        code = self.type_code(type_name)
        assert self._node_types is not None
        return self._node_types == code

    # ------------------------------------------------------------------ #
    # Transition probabilities (the paper's M)
    # ------------------------------------------------------------------ #

    @property
    def transition(self) -> sp.csr_matrix:
        """Row-stochastic transition matrix ``P`` with ``P[u, v] = M_uv``.

        Rows of dangling nodes get a unit self-loop so every row sums to one.
        """
        if self._transition is None:
            self._transition = _row_normalize_with_self_loops(self._weights)
        return self._transition

    @property
    def _transition_by_col(self) -> sp.csc_matrix:
        """CSC view of ``P`` for fast in-edge (column) access."""
        if self._transition_csc is None:
            self._transition_csc = self.transition.tocsc()
            self._transition_csc.sort_indices()
        return self._transition_csc

    @property
    def _weights_by_col(self) -> sp.csc_matrix:
        if self._weights_csc is None:
            self._weights_csc = self._weights.tocsc()
            self._weights_csc.sort_indices()
        return self._weights_csc

    def out_edges(self, node: int) -> tuple[np.ndarray, np.ndarray]:
        """Out-neighbors of ``node`` with transition probabilities.

        Returns ``(neighbors, probs)`` where ``probs[i] = M[node, neighbors[i]]``.
        The self-loop injected for dangling nodes is included.
        """
        node = check_node_id(node, self._n)
        p = self.transition
        lo, hi = p.indptr[node], p.indptr[node + 1]
        return p.indices[lo:hi], p.data[lo:hi]

    def in_edges(self, node: int) -> tuple[np.ndarray, np.ndarray]:
        """In-neighbors of ``node`` with transition probabilities.

        Returns ``(neighbors, probs)`` where ``probs[i] = M[neighbors[i], node]``
        — the probability that a surfer at ``neighbors[i]`` steps to ``node``.
        """
        node = check_node_id(node, self._n)
        p = self._transition_by_col
        lo, hi = p.indptr[node], p.indptr[node + 1]
        return p.indices[lo:hi], p.data[lo:hi]

    def out_neighbors(self, node: int) -> np.ndarray:
        """Out-neighbors of ``node`` by raw edges (no dangling self-loop)."""
        node = check_node_id(node, self._n)
        w = self._weights
        return w.indices[w.indptr[node] : w.indptr[node + 1]]

    def in_neighbors(self, node: int) -> np.ndarray:
        """In-neighbors of ``node`` by raw edges."""
        node = check_node_id(node, self._n)
        w = self._weights_by_col
        return w.indices[w.indptr[node] : w.indptr[node + 1]]

    def undirected_neighbors(self, node: int) -> np.ndarray:
        """Union of in- and out-neighbors (used by AdamicAdar)."""
        return np.union1d(self.out_neighbors(node), self.in_neighbors(node))

    @property
    def out_degrees(self) -> np.ndarray:
        """Raw out-degree (number of out-arcs) per node."""
        return np.diff(self._weights.indptr)

    @property
    def in_degrees(self) -> np.ndarray:
        """Raw in-degree (number of in-arcs) per node."""
        return np.diff(self._weights_by_col.indptr)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the arc ``u -> v`` exists."""
        u = check_node_id(u, self._n, "u")
        v = check_node_id(v, self._n, "v")
        w = self._weights
        lo, hi = w.indptr[u], w.indptr[u + 1]
        pos = np.searchsorted(w.indices[lo:hi], v)
        return pos < hi - lo and w.indices[lo + pos] == v

    def edge_weight(self, u: int, v: int) -> float:
        """Raw weight of arc ``u -> v`` (0.0 if absent)."""
        u = check_node_id(u, self._n, "u")
        v = check_node_id(v, self._n, "v")
        w = self._weights
        lo, hi = w.indptr[u], w.indptr[u + 1]
        pos = np.searchsorted(w.indices[lo:hi], v)
        if pos < hi - lo and w.indices[lo + pos] == v:
            return float(w.data[lo + pos])
        return 0.0

    # ------------------------------------------------------------------ #
    # Derived graphs
    # ------------------------------------------------------------------ #

    def reverse(self) -> "DiGraph":
        """The graph with every arc reversed (same labels and types)."""
        return DiGraph(
            self._weights.T.tocsr(),
            labels=self._labels,
            node_types=self._node_types,
            type_names=self._type_names,
        )

    def with_removed_edges(self, arcs: Iterable[tuple[int, int]]) -> "DiGraph":
        """A copy of the graph with the given arcs deleted.

        Each pair ``(u, v)`` removes the single arc ``u -> v``; to remove an
        undirected edge pass both ``(u, v)`` and ``(v, u)``.  Missing arcs are
        silently ignored (tasks remove "all direct edges" between a query and
        its ground truth without checking directionality first).
        """
        w = self._weights.copy()
        touched = False
        for u, v in arcs:
            u = check_node_id(u, self._n, "u")
            v = check_node_id(v, self._n, "v")
            lo, hi = w.indptr[u], w.indptr[u + 1]
            pos = np.searchsorted(w.indices[lo:hi], v)
            if pos < hi - lo and w.indices[lo + pos] == v:
                w.data[lo + pos] = 0.0
                touched = True
        if touched:
            w.eliminate_zeros()
        return DiGraph(
            w,
            labels=self._labels,
            node_types=self._node_types,
            type_names=self._type_names,
        )

    def subgraph(self, nodes: "np.ndarray | Sequence[int]") -> tuple["DiGraph", np.ndarray]:
        """Induced subgraph on ``nodes``.

        Returns ``(sub, original_ids)`` where ``original_ids[i]`` is the id in
        this graph of node ``i`` in the subgraph.  Nodes are deduplicated and
        sorted by original id for determinism.
        """
        original_ids = np.unique(np.asarray(nodes, dtype=np.int64))
        if original_ids.size and (original_ids[0] < 0 or original_ids[-1] >= self._n):
            raise ValueError("subgraph nodes out of range")
        sub_w = self._weights[original_ids][:, original_ids]
        labels = [self._labels[i] for i in original_ids] if self._labels is not None else None
        types = self._node_types[original_ids] if self._node_types is not None else None
        return (
            DiGraph(sub_w, labels=labels, node_types=types, type_names=self._type_names),
            original_ids,
        )

    def to_networkx(self):
        """Export to a :class:`networkx.DiGraph` (weights on edges)."""
        import networkx as nx

        g = nx.DiGraph()
        g.add_nodes_from(range(self._n))
        coo = self._weights.tocoo()
        g.add_weighted_edges_from(zip(coo.row.tolist(), coo.col.tolist(), coo.data.tolist()))
        return g

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #

    #: bytes we charge per node / per arc in memory-size accounting.  The
    #: model matches the CSR layout: an arc stores a 4-byte column index and
    #: an 8-byte weight; a node stores an 8-byte indptr entry on each side.
    NODE_BYTES = 16
    ARC_BYTES = 12

    @property
    def memory_bytes(self) -> int:
        """Model-based memory footprint used in the Fig. 12 accounting."""
        return self._n * self.NODE_BYTES + self.n_edges * self.ARC_BYTES

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        typed = f", {len(self._type_names)} types" if self._type_names else ""
        return f"DiGraph(n_nodes={self._n}, n_edges={self.n_edges}{typed})"


def _row_normalize_with_self_loops(weights: sp.csr_matrix) -> sp.csr_matrix:
    """Row-normalize ``weights``; dangling rows get a unit self-loop."""
    n = weights.shape[0]
    row_sums = np.asarray(weights.sum(axis=1)).ravel()
    dangling = np.flatnonzero(row_sums == 0)
    coo = weights.tocoo()
    inv = np.zeros(n)
    nonzero = row_sums > 0
    inv[nonzero] = 1.0 / row_sums[nonzero]
    data = coo.data * inv[coo.row]
    rows = coo.row
    cols = coo.col
    if dangling.size:
        rows = np.concatenate([rows, dangling])
        cols = np.concatenate([cols, dangling])
        data = np.concatenate([data, np.ones(dangling.size)])
    p = sp.csr_matrix((data, (rows, cols)), shape=(n, n))
    p.sort_indices()
    return p
