"""Graph substrate: storage, transitions, typing, irreducibility, snapshots.

Public surface:

- :class:`DiGraph` — immutable CSR-backed directed weighted graph;
- :class:`GraphBuilder` / :func:`graph_from_edges` — construction;
- :func:`apply_type_weights` — heterogeneous edge-type weighting;
- :func:`make_irreducible` / :func:`is_strongly_connected` — the Sect. III-B
  irreducibility caveat;
- subgraph sampling and growth snapshots for the Sect. VI experiments.
"""

from repro.graph.builder import GraphBuilder, graph_from_edges
from repro.graph.digraph import DiGraph
from repro.graph.hetero import (
    DEFAULT_BIBNET_TYPE_WEIGHTS,
    apply_type_weights,
    edge_type_counts,
)
from repro.graph.io import load_graph, save_graph
from repro.graph.irreducible import (
    is_strongly_connected,
    make_irreducible,
    strongly_connected_components,
)
from repro.graph.sampling import (
    hop_expansion_subgraph,
    random_seed_expansion,
    venue_induced_subgraph,
)
from repro.graph.snapshots import Snapshot, growth_rates, take_snapshots
from repro.graph.stats import (
    DegreeSummary,
    average_degree,
    degree_summary,
    fit_densification,
    hill_tail_exponent,
)
from repro.graph.transition import (
    dangling_nodes,
    is_row_stochastic,
    row_normalize,
)

__all__ = [
    "DiGraph",
    "GraphBuilder",
    "graph_from_edges",
    "DEFAULT_BIBNET_TYPE_WEIGHTS",
    "apply_type_weights",
    "edge_type_counts",
    "load_graph",
    "save_graph",
    "is_strongly_connected",
    "make_irreducible",
    "strongly_connected_components",
    "hop_expansion_subgraph",
    "random_seed_expansion",
    "venue_induced_subgraph",
    "Snapshot",
    "growth_rates",
    "take_snapshots",
    "DegreeSummary",
    "average_degree",
    "degree_summary",
    "fit_densification",
    "hill_tail_exponent",
    "dangling_nodes",
    "is_row_stochastic",
    "row_normalize",
]
