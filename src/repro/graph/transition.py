"""Transition-matrix utilities.

The one-step transition probability :math:`M_{uv}` (Sect. III-B of the
paper) is the row-normalized edge weight.  :class:`DiGraph` computes and
caches it; this module provides the free functions used there plus helpers
for inspecting stochasticity and dangling nodes, which the tests and the
irreducibility utilities rely on.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graph.digraph import DiGraph, _row_normalize_with_self_loops


def row_normalize(weights: sp.spmatrix, dangling: str = "self-loop") -> sp.csr_matrix:
    """Row-normalize a non-negative weight matrix into a stochastic matrix.

    ``dangling`` selects how zero rows are handled:

    - ``"self-loop"`` (default): the dangling node keeps all probability mass
      on itself, matching :attr:`DiGraph.transition`;
    - ``"error"``: raise ``ValueError`` if any row sums to zero.
    """
    weights = sp.csr_matrix(weights, dtype=np.float64)
    row_sums = np.asarray(weights.sum(axis=1)).ravel()
    if dangling == "error":
        if np.any(row_sums == 0):
            bad = np.flatnonzero(row_sums == 0)[:5].tolist()
            raise ValueError(f"dangling rows with no out-edges: {bad} ...")
        inv = 1.0 / row_sums
        out = weights.multiply(inv[:, None]).tocsr()
        out.sort_indices()
        return out
    if dangling == "self-loop":
        return _row_normalize_with_self_loops(weights)
    raise ValueError(f"unknown dangling policy {dangling!r}")


def dangling_nodes(graph: DiGraph) -> np.ndarray:
    """Ids of nodes with no raw out-edges."""
    return np.flatnonzero(graph.out_degrees == 0)


def is_row_stochastic(matrix: sp.spmatrix, atol: float = 1e-9) -> bool:
    """Whether every row of ``matrix`` sums to one (within ``atol``)."""
    row_sums = np.asarray(sp.csr_matrix(matrix).sum(axis=1)).ravel()
    return bool(np.allclose(row_sums, 1.0, atol=atol))


def transition_power_step(p, dist: np.ndarray) -> np.ndarray:
    """One forward step of a walk distribution: ``dist @ P``.

    ``dist[v]`` is the probability of being at ``v``; the result is the
    distribution after one random-walk step.  ``p`` may be a raw sparse
    matrix (multiplied directly — no per-step wrapping cost) or a
    :class:`repro.ops.TransitionOperator` such as
    ``repro.ops.get_operator(graph)``.
    """
    if sp.issparse(p):
        return np.asarray(dist @ p).ravel()
    return p.rmatvec(dist)
