"""Incremental construction of :class:`~repro.graph.digraph.DiGraph`.

The builder accumulates nodes and edges in plain Python lists and emits an
immutable CSR-backed graph.  Undirected edges are materialized as two arcs,
matching the paper's convention ("an undirected edge is treated as
bidirectional", Sect. I).  Duplicate arcs are summed.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
import scipy.sparse as sp

from repro.graph.digraph import DiGraph


class GraphBuilder:
    """Mutable graph under construction.

    >>> b = GraphBuilder(type_names=["paper", "term"])
    >>> p = b.add_node("p1", "paper")
    >>> t = b.add_node("t1", "term")
    >>> b.add_edge(p, t, weight=1.0, directed=False)
    >>> g = b.build()
    >>> g.n_nodes, g.n_edges
    (2, 2)
    """

    def __init__(self, type_names: "Sequence[str] | None" = None) -> None:
        self._labels: list[str] = []
        self._types: list[int] = []
        self._type_names = list(type_names) if type_names is not None else None
        self._label_to_id: dict[str, int] = {}
        self._src: list[int] = []
        self._dst: list[int] = []
        self._wgt: list[float] = []

    @property
    def n_nodes(self) -> int:
        """Number of nodes added so far."""
        return len(self._labels)

    @property
    def n_arcs(self) -> int:
        """Number of arcs added so far (before duplicate merging)."""
        return len(self._src)

    def add_node(self, label: "str | None" = None, node_type: "str | None" = None) -> int:
        """Add a node; returns its id.

        Labels must be unique when given.  ``node_type`` is required when the
        builder was created with ``type_names`` and must be one of them.
        """
        node_id = len(self._labels)
        if label is None:
            label = f"n{node_id}"
        if label in self._label_to_id:
            raise ValueError(f"duplicate node label {label!r}")
        if self._type_names is not None:
            if node_type is None:
                raise ValueError("node_type is required for a typed graph")
            try:
                code = self._type_names.index(node_type)
            except ValueError:
                raise ValueError(
                    f"unknown node type {node_type!r}; expected one of {self._type_names}"
                ) from None
            self._types.append(code)
        elif node_type is not None:
            raise ValueError("builder was created without type_names; cannot type nodes")
        self._labels.append(label)
        self._label_to_id[label] = node_id
        return node_id

    def node_id(self, label: str) -> int:
        """Id of a previously added node by label."""
        return self._label_to_id[label]

    def __contains__(self, label: str) -> bool:
        return label in self._label_to_id

    def get_or_add_node(self, label: str, node_type: "str | None" = None) -> int:
        """Return the id of ``label``, adding the node if it does not exist."""
        existing = self._label_to_id.get(label)
        if existing is not None:
            return existing
        return self.add_node(label, node_type)

    def add_edge(self, u: int, v: int, weight: float = 1.0, directed: bool = True) -> None:
        """Add an edge.  ``directed=False`` adds both arcs with this weight."""
        n = len(self._labels)
        if not (0 <= u < n and 0 <= v < n):
            raise ValueError(f"edge ({u}, {v}) references unknown nodes (n={n})")
        if weight <= 0:
            raise ValueError(f"edge weight must be > 0, got {weight}")
        self._src.append(u)
        self._dst.append(v)
        self._wgt.append(float(weight))
        if not directed:
            self._src.append(v)
            self._dst.append(u)
            self._wgt.append(float(weight))

    def build(self) -> DiGraph:
        """Freeze into an immutable :class:`DiGraph` (duplicate arcs summed)."""
        n = len(self._labels)
        w = sp.csr_matrix(
            (self._wgt, (self._src, self._dst)),
            shape=(n, n),
            dtype=np.float64,
        )
        w.sum_duplicates()
        return DiGraph(
            w,
            labels=self._labels,
            node_types=self._types if self._type_names is not None else None,
            type_names=self._type_names,
        )


def graph_from_edges(
    n_nodes: int,
    edges: "Sequence[tuple[int, int]] | Sequence[tuple[int, int, float]]",
    directed: bool = True,
    labels: "Sequence[str] | None" = None,
) -> DiGraph:
    """Convenience constructor from an edge list.

    Each edge is ``(u, v)`` or ``(u, v, weight)``.  With ``directed=False``
    every edge contributes both arcs.
    """
    src: list[int] = []
    dst: list[int] = []
    wgt: list[float] = []
    for edge in edges:
        if len(edge) == 2:
            u, v = edge  # type: ignore[misc]
            weight = 1.0
        else:
            u, v, weight = edge  # type: ignore[misc]
        src.append(u)
        dst.append(v)
        wgt.append(float(weight))
        if not directed:
            src.append(v)
            dst.append(u)
            wgt.append(float(weight))
    w = sp.csr_matrix((wgt, (src, dst)), shape=(n_nodes, n_nodes), dtype=np.float64)
    w.sum_duplicates()
    return DiGraph(w, labels=labels)
