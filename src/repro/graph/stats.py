"""Graph statistics: degree distributions and densification power laws.

Sect. V-B of the paper grounds the active-set analysis in the observation of
Leskovec et al. that average degree follows a power law in graph size,
``avg_degree ~ c * n^(a-1)`` with ``1 < a < 2`` on most real graphs.  The
:func:`fit_densification` helper estimates ``(c, a)`` from a series of
snapshots, which the tests use to check that our synthetic generators
actually densify like real graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.graph.digraph import DiGraph


@dataclass(frozen=True)
class DegreeSummary:
    """Summary statistics of a graph's degree distribution."""

    n_nodes: int
    n_edges: int
    avg_out_degree: float
    max_out_degree: int
    max_in_degree: int
    # Complementary-CDF-based tail exponent estimate (Hill estimator) of the
    # in-degree distribution; NaN when degrees are too uniform to estimate.
    in_degree_tail_exponent: float


def degree_summary(graph: DiGraph, tail_fraction: float = 0.1) -> DegreeSummary:
    """Compute a :class:`DegreeSummary` for ``graph``."""
    out_deg = graph.out_degrees
    in_deg = graph.in_degrees
    return DegreeSummary(
        n_nodes=graph.n_nodes,
        n_edges=graph.n_edges,
        avg_out_degree=float(out_deg.mean()) if graph.n_nodes else 0.0,
        max_out_degree=int(out_deg.max()) if graph.n_nodes else 0,
        max_in_degree=int(in_deg.max()) if graph.n_nodes else 0,
        in_degree_tail_exponent=hill_tail_exponent(in_deg, tail_fraction),
    )


def hill_tail_exponent(degrees: np.ndarray, tail_fraction: float = 0.1) -> float:
    """Hill estimator of the power-law tail exponent of a degree sample.

    Uses the top ``tail_fraction`` of strictly positive degrees.  Returns NaN
    when fewer than 10 tail samples are available.
    """
    degrees = np.asarray(degrees, dtype=np.float64)
    degrees = degrees[degrees > 0]
    if degrees.size == 0:
        return float("nan")
    k = max(int(degrees.size * tail_fraction), 1)
    if k < 10:
        return float("nan")
    tail = np.sort(degrees)[-k:]
    x_min = tail[0]
    if x_min <= 0 or np.all(tail == x_min):
        return float("nan")
    return 1.0 + k / float(np.sum(np.log(tail / x_min)))


def fit_densification(
    n_nodes_series: Sequence[int],
    n_edges_series: Sequence[int],
) -> tuple[float, float]:
    """Fit ``edges ~ c * nodes^a`` over a snapshot series; returns ``(c, a)``.

    ``a`` is the densification exponent (Leskovec et al.); average degree
    then grows as ``c * n^(a-1)``, the form the paper's Sect. V-B analysis
    assumes.  Requires at least two snapshots with distinct node counts.
    """
    nodes = np.asarray(n_nodes_series, dtype=np.float64)
    edges = np.asarray(n_edges_series, dtype=np.float64)
    if nodes.shape != edges.shape or nodes.size < 2:
        raise ValueError("need >= 2 snapshots with matching node/edge series")
    if np.any(nodes <= 0) or np.any(edges <= 0):
        raise ValueError("node and edge counts must be positive")
    if np.unique(nodes).size < 2:
        raise ValueError("node counts must not all be equal")
    log_n = np.log(nodes)
    log_e = np.log(edges)
    a, log_c = np.polyfit(log_n, log_e, 1)
    return float(np.exp(log_c)), float(a)


def average_degree(graph: DiGraph) -> float:
    """Average out-degree (arcs per node)."""
    if graph.n_nodes == 0:
        return 0.0
    return graph.n_edges / graph.n_nodes
