"""Graph serialization: a simple JSON + edge-array container format.

The format stores node labels/types and the weighted arc list.  It is meant
for persisting generated datasets and exchanging small graphs in tests, not
for web-scale storage.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import scipy.sparse as sp

from repro.graph.digraph import DiGraph

_FORMAT_VERSION = 1


def save_graph(graph: DiGraph, path: "str | Path") -> None:
    """Write ``graph`` to ``path`` as JSON (arcs in COO form)."""
    coo = graph.weights.tocoo()
    payload = {
        "format_version": _FORMAT_VERSION,
        "n_nodes": graph.n_nodes,
        "src": coo.row.tolist(),
        "dst": coo.col.tolist(),
        "weight": coo.data.tolist(),
        "labels": graph.labels,
        "node_types": graph.node_types.tolist() if graph.node_types is not None else None,
        "type_names": graph.type_names,
    }
    Path(path).write_text(json.dumps(payload))


def load_graph(path: "str | Path") -> DiGraph:
    """Read a graph previously written by :func:`save_graph`."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported graph format version {version!r}")
    n = payload["n_nodes"]
    w = sp.csr_matrix(
        (payload["weight"], (payload["src"], payload["dst"])),
        shape=(n, n),
        dtype=np.float64,
    )
    return DiGraph(
        w,
        labels=payload["labels"],
        node_types=payload["node_types"],
        type_names=payload["type_names"],
    )
