"""Growing-graph snapshots (Fig. 12–13 substrate).

The paper models graph growth by taking five *cumulative* snapshots of each
dataset at increasing timestamps (BibNet by publication year, QLog by day).
Our dataset generators attach an integer ``timestamp`` to every node; a
snapshot keeps every node with ``timestamp <= cutoff`` plus all edges among
kept nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.graph.digraph import DiGraph


@dataclass(frozen=True)
class Snapshot:
    """A cumulative snapshot of a growing graph.

    Attributes
    ----------
    cutoff:
        The timestamp this snapshot was taken at.
    graph:
        The induced subgraph of nodes born at or before ``cutoff``.
    original_ids:
        ``original_ids[i]`` is the full-graph id of snapshot node ``i``.
    """

    cutoff: int
    graph: DiGraph
    original_ids: np.ndarray

    @property
    def size_bytes(self) -> int:
        """Model-based size of this snapshot (see :attr:`DiGraph.memory_bytes`)."""
        return self.graph.memory_bytes


def take_snapshots(
    graph: DiGraph,
    timestamps: np.ndarray,
    cutoffs: Sequence[int],
) -> list[Snapshot]:
    """Build cumulative snapshots of ``graph`` at each cutoff.

    ``timestamps[v]`` is the birth time of node ``v``.  Cutoffs must be
    non-decreasing; each snapshot contains every node born at or before its
    cutoff (so later snapshots are supersets of earlier ones).
    """
    timestamps = np.asarray(timestamps)
    if timestamps.shape != (graph.n_nodes,):
        raise ValueError(
            f"timestamps has shape {timestamps.shape}, expected ({graph.n_nodes},)"
        )
    if list(cutoffs) != sorted(cutoffs):
        raise ValueError("cutoffs must be non-decreasing")
    snapshots: list[Snapshot] = []
    for cutoff in cutoffs:
        nodes = np.flatnonzero(timestamps <= cutoff)
        if nodes.size == 0:
            raise ValueError(f"snapshot at cutoff {cutoff} would be empty")
        sub, ids = graph.subgraph(nodes)
        snapshots.append(Snapshot(cutoff=int(cutoff), graph=sub, original_ids=ids))
    return snapshots


def growth_rates(values: Sequence[float]) -> list[float]:
    """Normalize a series by its first element (the paper's "rate of growth").

    Fig. 13 plots snapshot size, active-set size and query time normalized by
    their values on the first snapshot.
    """
    if not values:
        return []
    base = float(values[0])
    if base == 0:
        raise ValueError("first value is zero; growth rate undefined")
    return [float(v) / base for v in values]
