"""Subgraph extraction used by the effectiveness experiments (Sect. VI).

The paper evaluates effectiveness on two subgraphs:

- BibNet: the subgraph induced by 28 hand-picked major venues in four areas
  (their papers, authors and terms) — implemented by
  :func:`venue_induced_subgraph`;
- QLog: 200 random seed nodes expanded to their neighbors for three hops —
  implemented by :func:`hop_expansion_subgraph`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graph.digraph import DiGraph
from repro.utils.rng import ensure_rng


def hop_expansion_subgraph(
    graph: DiGraph,
    seeds: "Sequence[int] | np.ndarray",
    hops: int,
    max_nodes: "int | None" = None,
    seed: "int | np.random.Generator | None" = None,
) -> tuple[DiGraph, np.ndarray]:
    """Expand ``seeds`` to all nodes within ``hops`` undirected hops.

    Mirrors the paper's QLog subgraph construction ("start with 200 random
    nodes, and expand to their neighbors for three hops").  If ``max_nodes``
    is given and the frontier would exceed it, a uniform random subset of the
    final node set of size ``max_nodes`` (always containing the seeds) is
    kept, which keeps pilot experiments tractable.

    Returns ``(subgraph, original_ids)`` as :meth:`DiGraph.subgraph` does.
    """
    if hops < 0:
        raise ValueError(f"hops must be >= 0, got {hops}")
    rng = ensure_rng(seed)
    frontier = np.unique(np.asarray(seeds, dtype=np.int64))
    visited = set(frontier.tolist())
    for _ in range(hops):
        next_frontier: list[int] = []
        for node in frontier:
            for nb in graph.undirected_neighbors(int(node)):
                if int(nb) not in visited:
                    visited.add(int(nb))
                    next_frontier.append(int(nb))
        if not next_frontier:
            break
        frontier = np.asarray(next_frontier, dtype=np.int64)
    nodes = np.asarray(sorted(visited), dtype=np.int64)
    if max_nodes is not None and nodes.size > max_nodes:
        seed_set = np.unique(np.asarray(seeds, dtype=np.int64))
        others = np.setdiff1d(nodes, seed_set)
        keep = rng.choice(others, size=max_nodes - seed_set.size, replace=False)
        nodes = np.union1d(seed_set, keep)
    return graph.subgraph(nodes)


def random_seed_expansion(
    graph: DiGraph,
    n_seeds: int,
    hops: int,
    seed: "int | np.random.Generator | None" = None,
    max_nodes: "int | None" = None,
) -> tuple[DiGraph, np.ndarray]:
    """Paper-style random-seed subgraph: ``n_seeds`` random nodes + ``hops`` hops."""
    rng = ensure_rng(seed)
    if n_seeds <= 0 or n_seeds > graph.n_nodes:
        raise ValueError(f"n_seeds must be in [1, {graph.n_nodes}], got {n_seeds}")
    seeds = rng.choice(graph.n_nodes, size=n_seeds, replace=False)
    return hop_expansion_subgraph(graph, seeds, hops, max_nodes=max_nodes, seed=rng)


def venue_induced_subgraph(
    graph: DiGraph,
    venues: "Sequence[int] | np.ndarray",
) -> tuple[DiGraph, np.ndarray]:
    """Subgraph induced by a set of venue nodes and everything attached.

    Mirrors the paper's BibNet subgraph ("28 hand-picked major venues ...
    resulting in a subgraph"): keep the venues, all papers directly linked to
    them, and all authors/terms of those papers.

    Requires a typed graph with a ``"venue"`` type so papers can be found.
    """
    if graph.node_types is None:
        raise ValueError("venue_induced_subgraph requires a typed graph")
    venue_ids = np.unique(np.asarray(venues, dtype=np.int64))
    venue_code = graph.type_code("venue")
    for v in venue_ids:
        if graph.node_types[v] != venue_code:
            raise ValueError(f"node {v} is not a venue")
    papers: set[int] = set()
    for v in venue_ids:
        for nb in graph.undirected_neighbors(int(v)):
            papers.add(int(nb))
    keep: set[int] = set(venue_ids.tolist()) | papers
    for p in papers:
        for nb in graph.undirected_neighbors(p):
            keep.add(int(nb))
    # Drop venues other than the requested ones so the subgraph is "about"
    # exactly the picked venues, as in the paper's setup.
    venue_mask = graph.node_types == venue_code
    keep_arr = np.asarray(sorted(keep), dtype=np.int64)
    keep_arr = keep_arr[~venue_mask[keep_arr] | np.isin(keep_arr, venue_ids)]
    return graph.subgraph(keep_arr)
