"""Heterogeneous (typed) graph helpers.

The paper's BibNet is a typed network (papers, authors, terms, venues) whose
edge weights are set "following a previous work [14]" (Sarkar et al.,
ICML'08): each *edge type* — an ordered pair of node types — carries a
relative weight that scales all raw edge weights of that type before row
normalization.  This lets a paper's citation edges matter more or less than
its term edges when the random surfer picks the next step.

:func:`apply_type_weights` implements exactly that rescaling and returns a
new :class:`DiGraph`; everything downstream (F-Rank, T-Rank, 2SBound, the
baselines) is agnostic to types beyond the final weights.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.graph.digraph import DiGraph

#: Default relative edge-type weights for bibliographic networks, in the
#: spirit of Sarkar et al. [14]: citation edges carry the most authority
#: flow, venue/author affiliation edges moderate, term edges the least
#: (terms are many and individually weak).
DEFAULT_BIBNET_TYPE_WEIGHTS: dict[tuple[str, str], float] = {
    ("paper", "paper"): 4.0,
    ("paper", "venue"): 2.0,
    ("venue", "paper"): 2.0,
    ("paper", "author"): 2.0,
    ("author", "paper"): 2.0,
    ("paper", "term"): 1.0,
    ("term", "paper"): 1.0,
}


def apply_type_weights(
    graph: DiGraph,
    type_weights: Mapping[tuple[str, str], float],
    default: float = 1.0,
) -> DiGraph:
    """Rescale edge weights by node-type pair.

    Every arc ``u -> v`` has its raw weight multiplied by
    ``type_weights[(type_of(u), type_of(v))]`` (or ``default`` when the pair
    is not listed).  A weight of zero removes the edge type entirely.

    Raises ``ValueError`` when the graph is untyped.
    """
    if graph.node_types is None or graph.type_names is None:
        raise ValueError("apply_type_weights requires a typed graph")
    for (src_t, dst_t), w in type_weights.items():
        if w < 0:
            raise ValueError(f"type weight for ({src_t!r}, {dst_t!r}) must be >= 0, got {w}")

    n_types = len(graph.type_names)
    factor = np.full((n_types, n_types), float(default))
    for (src_t, dst_t), w in type_weights.items():
        factor[graph.type_code(src_t), graph.type_code(dst_t)] = float(w)

    coo = graph.weights.tocoo()
    scaled = coo.data * factor[graph.node_types[coo.row], graph.node_types[coo.col]]
    import scipy.sparse as sp

    new_w = sp.csr_matrix((scaled, (coo.row, coo.col)), shape=coo.shape)
    return DiGraph(
        new_w,
        labels=graph.labels,
        node_types=graph.node_types,
        type_names=graph.type_names,
    )


def edge_type_counts(graph: DiGraph) -> dict[tuple[str, str], int]:
    """Histogram of arcs by (source type, destination type) pair."""
    if graph.node_types is None or graph.type_names is None:
        raise ValueError("edge_type_counts requires a typed graph")
    coo = graph.weights.tocoo()
    names = graph.type_names
    counts: dict[tuple[str, str], int] = {}
    pair_codes = graph.node_types[coo.row].astype(np.int64) * len(names) + graph.node_types[coo.col]
    codes, freq = np.unique(pair_codes, return_counts=True)
    for code, f in zip(codes.tolist(), freq.tolist()):
        counts[(names[code // len(names)], names[code % len(names)])] = f
    return counts
