"""Irreducibility utilities (the Sect. III-B caveat).

If a directed path exists from ``q`` to ``v`` but not back, ``t(q, v) = 0``
and hence ``r(q, v) = 0`` regardless of how large ``f(q, v)`` is.  The paper
notes this cannot happen on an irreducible (strongly connected) graph and
that "in practice, we can always make a graph irreducible by adding some
dummy edges".  This module provides both the check and the augmentation.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import connected_components

from repro.graph.digraph import DiGraph


def strongly_connected_components(graph: DiGraph) -> tuple[int, np.ndarray]:
    """Number of SCCs and the component label of each node."""
    n_comp, labels = connected_components(graph.weights, directed=True, connection="strong")
    return int(n_comp), labels


def is_strongly_connected(graph: DiGraph) -> bool:
    """Whether the graph is irreducible (one strongly connected component)."""
    if graph.n_nodes == 0:
        return True
    n_comp, _ = strongly_connected_components(graph)
    return n_comp == 1


def make_irreducible(graph: DiGraph, dummy_weight_fraction: float = 1e-3) -> DiGraph:
    """Add low-weight dummy edges until the graph is strongly connected.

    The SCCs of the condensation DAG are stitched into a single cycle with
    one dummy arc per consecutive SCC pair (between arbitrary representative
    nodes).  Each dummy arc's weight is ``dummy_weight_fraction`` times the
    source node's current out-weight sum (or 1.0 for isolated nodes), so the
    perturbation to transition probabilities is small and controllable.

    Returns the same graph object when it is already irreducible.
    """
    if dummy_weight_fraction <= 0:
        raise ValueError(f"dummy_weight_fraction must be > 0, got {dummy_weight_fraction}")
    n_comp, labels = strongly_connected_components(graph)
    if n_comp <= 1:
        return graph

    # One representative node per SCC, in SCC-label order.
    representatives = np.zeros(n_comp, dtype=np.int64)
    seen = np.zeros(n_comp, dtype=bool)
    for node in range(graph.n_nodes):
        comp = labels[node]
        if not seen[comp]:
            representatives[comp] = node
            seen[comp] = True

    out_strength = np.asarray(graph.weights.sum(axis=1)).ravel()
    src: list[int] = []
    dst: list[int] = []
    wgt: list[float] = []
    for i in range(n_comp):
        u = int(representatives[i])
        v = int(representatives[(i + 1) % n_comp])
        base = out_strength[u] if out_strength[u] > 0 else 1.0
        src.append(u)
        dst.append(v)
        wgt.append(float(base) * dummy_weight_fraction)

    dummy = sp.csr_matrix(
        (wgt, (src, dst)), shape=(graph.n_nodes, graph.n_nodes), dtype=np.float64
    )
    return DiGraph(
        graph.weights + dummy,
        labels=graph.labels,
        node_types=graph.node_types,
        type_names=graph.type_names,
    )
