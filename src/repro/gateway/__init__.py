"""The multi-tenant serving gateway: one front door over the serving layer.

PR 2 built the serving primitives (column cache, micro-batcher, fused
top-k) as single-tenant parts bound to one ``(graph, measure, alpha)``;
this package assembles them into a service front:

- :class:`~repro.gateway.core.RankGateway` — routes ``submit(query,
  tenant=, graph=, measure=, alpha=, k=)`` calls to per-``(graph, measure,
  alpha)`` :class:`~repro.serving.MicroBatcher` *lanes*, created lazily,
  bounded by ``max_lanes`` (LRU lane eviction closes the lane, resolving
  its futures), all sharing **one** :class:`~repro.serving.ColumnCache`
  and hence the :mod:`repro.ops` operator cache.
- :mod:`~repro.gateway.admission` — per-tenant token-bucket rate limiting
  plus per-lane queue-depth load shedding; rejected queries come back as a
  typed :class:`~repro.gateway.admission.Shed`, never a dangling future.
  The dual invariant: **every accepted future resolves** (lane close and
  gateway close both flush).
- :mod:`~repro.gateway.prefetch` — a background
  :class:`~repro.gateway.prefetch.Prefetcher` that watches per-tenant
  decayed query-frequency estimates
  (:class:`~repro.gateway.frequency.FrequencyEstimator`) and warms hot
  uncached columns through the batch engine during idle capacity
  (``workers=`` aware).
- :mod:`~repro.gateway.stats` — :class:`~repro.gateway.stats.GatewayStats`
  with admission/shed/prefetch counters and per-lane latency quantiles
  (``snapshot()`` → :class:`~repro.gateway.stats.GatewaySnapshot`).

Pair with ``ColumnCache(policy="gdsf")`` for popularity-aware eviction
under multi-tenant budget pressure (see :mod:`repro.serving.policies`).

Quickstart::

    from repro.gateway import AdmissionConfig, Prefetcher, RankGateway, Shed
    from repro.serving import ColumnCache

    gateway = RankGateway(
        {"qlog": graph},
        cache=ColumnCache(policy="gdsf", alpha=0.25),
        admission=AdmissionConfig(rate=200.0, burst=50, max_queue_depth=64),
    )
    with gateway, Prefetcher(gateway):
        result = gateway.submit(q, tenant="acme", graph="qlog", k=20)
        if not isinstance(result, Shed):
            indices, scores = result.result()
"""

from repro.gateway.admission import (
    AdmissionConfig,
    AdmissionController,
    Shed,
    TokenBucket,
)
from repro.gateway.core import LaneKey, RankGateway
from repro.gateway.frequency import FrequencyEstimator
from repro.gateway.prefetch import Prefetcher
from repro.gateway.stats import (
    GatewaySnapshot,
    GatewayStats,
    LaneStats,
    lane_key_from_str,
    lane_key_to_str,
)

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "FrequencyEstimator",
    "GatewaySnapshot",
    "GatewayStats",
    "LaneKey",
    "LaneStats",
    "Prefetcher",
    "RankGateway",
    "Shed",
    "TokenBucket",
    "lane_key_from_str",
    "lane_key_to_str",
]
