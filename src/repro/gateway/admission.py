"""Admission control: per-tenant token buckets + queue-depth load shedding.

A multi-tenant front cannot let one tenant's flood starve everyone (or let
the lane queues grow without bound while solve latency compounds).  The
gateway therefore decides *before* enqueueing:

1. **Rate limiting** — each tenant owns a token bucket refilled at ``rate``
   tokens/second up to ``burst`` capacity; a query that finds the bucket
   empty is shed with ``reason="rate_limit"`` and a ``retry_after`` hint.
2. **Load shedding** — a query whose target lane already holds
   ``max_queue_depth`` pending requests is shed with ``reason="queue_full"``
   rather than queued: queue depth is a *bound*, never a hope.

Shedding is typed — callers receive a :class:`Shed` value, not an exception
and not a dangling future.  The complementary invariant (asserted across the
gateway test suite) is that every query *not* shed receives a future that
always resolves: load shedding happens strictly before enqueueing, so no
accepted future is ever abandoned.

Clocks are injectable for deterministic tests.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional


@dataclass(frozen=True)
class Shed:
    """A typed rejection: the query was *not* enqueued and has no future.

    ``reason`` is one of ``"rate_limit"`` (the tenant's token bucket was
    empty), ``"queue_full"`` (the target lane's pending queue is at its
    bound) or ``"closed"`` (the gateway is shut down).  ``retry_after`` is
    a seconds hint for rate-limited tenants (None otherwise).
    """

    reason: str
    tenant: str
    lane: "tuple | None" = None
    retry_after: "float | None" = None

    def __bool__(self) -> bool:
        # A Shed is falsy so `if not result: ...` reads naturally at call
        # sites that only care about admission.
        return False


@dataclass(frozen=True)
class AdmissionConfig:
    """Gateway-wide admission knobs.

    ``rate=None`` disables rate limiting; ``max_queue_depth=None`` disables
    depth shedding.  ``burst`` is the token-bucket capacity (a tenant idle
    long enough may send ``burst`` queries back-to-back before the
    steady-state ``rate`` applies).
    """

    rate: "float | None" = None
    burst: int = 16
    max_queue_depth: "int | None" = 64

    def __post_init__(self) -> None:
        if self.rate is not None and self.rate <= 0:
            raise ValueError(f"rate must be > 0 or None, got {self.rate}")
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst}")
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1 or None, got {self.max_queue_depth}"
            )


class TokenBucket:
    """A standard token bucket: ``rate`` tokens/second, ``burst`` capacity.

    Starts full.  ``try_acquire()`` takes one token if available and returns
    ``None``; otherwise it returns the seconds until a token will exist
    (the ``retry_after`` hint).  Thread-safe.
    """

    def __init__(
        self,
        rate: float,
        burst: int,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = int(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._last = clock()
        self._lock = threading.Lock()

    def try_acquire(self) -> "float | None":
        with self._lock:
            now = self._clock()
            self._tokens = min(
                float(self.burst), self._tokens + (now - self._last) * self.rate
            )
            self._last = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return None
            return (1.0 - self._tokens) / self.rate

    @property
    def tokens(self) -> float:
        """Current token count (refreshed to now) — for introspection."""
        with self._lock:
            now = self._clock()
            return min(float(self.burst), self._tokens + (now - self._last) * self.rate)


class AdmissionController:
    """Combines per-tenant token buckets with per-lane depth shedding.

    One controller serves one gateway; buckets are created lazily per tenant
    (all with the same ``rate``/``burst`` — per-tenant tiers would just be a
    dict of configs, left for when someone needs it).
    """

    def __init__(
        self,
        config: "AdmissionConfig | None" = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config or AdmissionConfig()
        self._clock = clock
        self._buckets: "dict[str, TokenBucket]" = {}
        self._lock = threading.Lock()

    def _bucket(self, tenant: str) -> Optional[TokenBucket]:
        if self.config.rate is None:
            return None
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = TokenBucket(self.config.rate, self.config.burst, self._clock)
                self._buckets[tenant] = bucket
            return bucket

    def admit(self, tenant: str, lane: tuple, lane_depth: int) -> "Shed | None":
        """``None`` if the query may be enqueued, else a :class:`Shed`.

        Checked in order: rate limit first (cheap, per-tenant fairness),
        then queue depth (global protection).  A rate-limited query does
        not consume queue capacity; a depth-shed query *has* consumed a
        token — the tenant spent its budget on a query the service could
        not absorb, which keeps the bucket an honest arrival meter.
        """
        bucket = self._bucket(tenant)
        if bucket is not None:
            retry_after = bucket.try_acquire()
            if retry_after is not None:
                return Shed(
                    reason="rate_limit",
                    tenant=tenant,
                    lane=lane,
                    retry_after=retry_after,
                )
        depth_bound = self.config.max_queue_depth
        if depth_bound is not None and lane_depth >= depth_bound:
            return Shed(reason="queue_full", tenant=tenant, lane=lane)
        return None
