"""Gateway observability: counters and per-lane latency quantiles.

:class:`GatewayStats` is the single mutation point for everything the
gateway counts — admissions, sheds by reason, per-tenant traffic, prefetch
activity — plus a bounded latency reservoir per lane from which snapshot
quantiles (p50/p90/p99) are computed.  All methods are thread-safe; reads
return plain frozen snapshots so callers can serialize them (the benchmark
writes them into ``gateway.json`` as-is).

Since PR 10 the counters live on a private, ungated
:class:`repro.obs.MetricsRegistry` instance — one registry per
``GatewayStats``, so concurrent gateways never share counts and recording
stays exact whether or not global observability is on.  The public API is
unchanged; :meth:`GatewayStats.snapshot` additionally benefits from the
registry's consistent reads (all counters are read under one lock
acquisition).  Latencies feed both the quantile reservoir (quantiles need
raw samples) and a fixed-bucket registry histogram keyed by the flattened
lane, so the same numbers are exportable through ``obs.render_prometheus``.

Lane-key format
---------------
``GatewaySnapshot.to_jsonable`` flattens ``(graph, measure, alpha)`` lane
tuples to the documented stable form ``graph/measure/alpha`` (e.g.
``"default/roundtriprank/0.25"``).  Graph names may themselves contain
``/``; measure names and the alpha rendering never do, so
:func:`lane_key_from_str` parses with ``rsplit("/", 2)`` and the mapping
round-trips exactly (``alpha`` is rendered with ``repr(float)``).
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro import obs

#: Latency samples retained per lane; old samples fall off, so quantiles
#: describe recent behavior rather than the whole process lifetime.
DEFAULT_RESERVOIR = 4096

#: Latency histogram uppers (seconds): sub-millisecond serving through
#: multi-second cold solves.
LATENCY_BUCKETS_S = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


def lane_key_to_str(lane: tuple) -> str:
    """Flatten a ``(graph, measure, alpha)`` lane tuple to its stable form."""
    graph, measure, alpha = lane
    return f"{graph}/{measure}/{float(alpha)!r}"


def lane_key_from_str(flat: str) -> tuple:
    """Parse the stable lane-key form back to ``(graph, measure, alpha)``.

    Splits from the right so graph names containing ``/`` survive the
    round trip (measure names and the alpha rendering never contain it).
    """
    graph, measure, alpha = flat.rsplit("/", 2)
    return (graph, measure, float(alpha))


@dataclass(frozen=True)
class LaneStats:
    """Latency summary of one lane at snapshot time (milliseconds)."""

    count: int
    p50_ms: float
    p90_ms: float
    p99_ms: float
    max_ms: float


@dataclass(frozen=True)
class GatewaySnapshot:
    """A point-in-time, serialization-friendly view of gateway activity."""

    n_admitted: int
    n_shed: int
    shed_by_reason: "dict[str, int]" = field(default_factory=dict)
    admitted_by_tenant: "dict[str, int]" = field(default_factory=dict)
    shed_by_tenant: "dict[str, int]" = field(default_factory=dict)
    n_prefetch_runs: int = 0
    n_prefetched_columns: int = 0
    n_local_certified: int = 0
    n_local_escalated: int = 0
    lanes: "dict[tuple, LaneStats]" = field(default_factory=dict)

    @property
    def shed_rate(self) -> float:
        total = self.n_admitted + self.n_shed
        return self.n_shed / total if total else 0.0

    def to_jsonable(self) -> dict:
        """The snapshot with lane tuples flattened to the stable key form.

        Lane keys are ``graph/measure/alpha`` per :func:`lane_key_to_str`;
        recover the tuples with :func:`lane_key_from_str`.
        """
        return {
            "n_admitted": self.n_admitted,
            "n_shed": self.n_shed,
            "shed_rate": self.shed_rate,
            "shed_by_reason": dict(self.shed_by_reason),
            "admitted_by_tenant": dict(self.admitted_by_tenant),
            "shed_by_tenant": dict(self.shed_by_tenant),
            "n_prefetch_runs": self.n_prefetch_runs,
            "n_prefetched_columns": self.n_prefetched_columns,
            "n_local_certified": self.n_local_certified,
            "n_local_escalated": self.n_local_escalated,
            "lanes": {
                lane_key_to_str(lane): {
                    "count": s.count,
                    "p50_ms": s.p50_ms,
                    "p90_ms": s.p90_ms,
                    "p99_ms": s.p99_ms,
                    "max_ms": s.max_ms,
                }
                for lane, s in self.lanes.items()
            },
        }


class GatewayStats:
    """Thread-safe counters + per-lane latency reservoirs.

    The counters are metrics on :attr:`registry` (an ungated per-instance
    :class:`repro.obs.MetricsRegistry`); the quantile reservoir keeps raw
    samples under its own leaf lock.  ``registry`` is public on purpose —
    a service can merge a gateway's metrics into its own exposition page
    with ``obs.render_metrics_text(stats.registry.snapshot())``.
    """

    def __init__(self, reservoir: int = DEFAULT_RESERVOIR) -> None:
        if reservoir < 1:
            raise ValueError(f"reservoir must be >= 1, got {reservoir}")
        self._reservoir = int(reservoir)
        self._lock = threading.Lock()
        self.registry = obs.MetricsRegistry()
        self._admitted = self.registry.counter(
            "repro_gateway_admitted_total", "Queries admitted", labels=("tenant",)
        )
        self._shed = self.registry.counter(
            "repro_gateway_shed_total", "Queries shed", labels=("tenant", "reason")
        )
        self._prefetch_runs = self.registry.counter(
            "repro_gateway_prefetch_runs_total", "Prefetch rounds executed"
        )
        self._prefetch_columns = self.registry.counter(
            "repro_gateway_prefetched_columns_total", "Columns solved by prefetch"
        )
        self._local = self.registry.counter(
            "repro_gateway_local_total", "Local fast-path outcomes", labels=("outcome",)
        )
        self._latency = self.registry.histogram(
            "repro_gateway_latency_seconds",
            "Submit-to-resolve latency",
            labels=("lane",),
            buckets=LATENCY_BUCKETS_S,
        )
        self._latencies: "dict[tuple, deque]" = {}

    def record_admitted(self, tenant: str) -> None:
        self._admitted.inc(tenant=tenant)

    def record_shed(self, tenant: str, reason: str) -> None:
        self._shed.inc(tenant=tenant, reason=reason)

    def record_latency(self, lane: tuple, seconds: float) -> None:
        seconds = float(seconds)
        self._latency.observe(seconds, lane=lane_key_to_str(lane))
        with self._lock:
            samples = self._latencies.get(lane)
            if samples is None:
                samples = self._latencies[lane] = deque(maxlen=self._reservoir)
            samples.append(seconds)

    def record_prefetch(self, n_columns: int) -> None:
        self._prefetch_runs.inc()
        self._prefetch_columns.inc(int(n_columns))

    def record_local(self, escalated: bool) -> None:
        """Count one local fast-path query by its outcome."""
        self._local.inc(outcome="escalated" if escalated else "certified")

    def snapshot(self) -> GatewaySnapshot:
        metrics = self.registry.snapshot()  # all counters under one lock

        def samples(name: str) -> list:
            return metrics[name]["samples"]

        admitted_by_tenant = {
            s["labels"]["tenant"]: int(s["value"])
            for s in samples("repro_gateway_admitted_total")
        }
        shed_by_reason: "dict[str, int]" = {}
        shed_by_tenant: "dict[str, int]" = {}
        for s in samples("repro_gateway_shed_total"):
            labels, count = s["labels"], int(s["value"])
            shed_by_reason[labels["reason"]] = shed_by_reason.get(labels["reason"], 0) + count
            shed_by_tenant[labels["tenant"]] = shed_by_tenant.get(labels["tenant"], 0) + count
        local = {
            s["labels"]["outcome"]: int(s["value"])
            for s in samples("repro_gateway_local_total")
        }

        def scalar(name: str) -> int:
            rows = samples(name)
            return int(rows[0]["value"]) if rows else 0

        with self._lock:
            lanes = {}
            for lane, reservoir in self._latencies.items():
                if not reservoir:
                    continue
                ms = np.asarray(reservoir, dtype=np.float64) * 1000.0
                lanes[lane] = LaneStats(
                    count=int(ms.size),
                    p50_ms=float(np.percentile(ms, 50)),
                    p90_ms=float(np.percentile(ms, 90)),
                    p99_ms=float(np.percentile(ms, 99)),
                    max_ms=float(ms.max()),
                )
        return GatewaySnapshot(
            n_admitted=sum(admitted_by_tenant.values()),
            n_shed=sum(shed_by_reason.values()),
            shed_by_reason=shed_by_reason,
            admitted_by_tenant=admitted_by_tenant,
            shed_by_tenant=shed_by_tenant,
            n_prefetch_runs=scalar("repro_gateway_prefetch_runs_total"),
            n_prefetched_columns=scalar("repro_gateway_prefetched_columns_total"),
            n_local_certified=local.get("certified", 0),
            n_local_escalated=local.get("escalated", 0),
            lanes=lanes,
        )
