"""Gateway observability: counters and per-lane latency quantiles.

:class:`GatewayStats` is the single mutation point for everything the
gateway counts — admissions, sheds by reason, per-tenant traffic, prefetch
activity — plus a bounded latency reservoir per lane from which snapshot
quantiles (p50/p90/p99) are computed.  All methods are thread-safe; reads
return plain frozen snapshots so callers can serialize them (the benchmark
writes them into ``gateway.json`` as-is).
"""

from __future__ import annotations

import threading
from collections import Counter, deque
from dataclasses import dataclass, field

import numpy as np

#: Latency samples retained per lane; old samples fall off, so quantiles
#: describe recent behavior rather than the whole process lifetime.
DEFAULT_RESERVOIR = 4096


@dataclass(frozen=True)
class LaneStats:
    """Latency summary of one lane at snapshot time (milliseconds)."""

    count: int
    p50_ms: float
    p90_ms: float
    p99_ms: float
    max_ms: float


@dataclass(frozen=True)
class GatewaySnapshot:
    """A point-in-time, serialization-friendly view of gateway activity."""

    n_admitted: int
    n_shed: int
    shed_by_reason: "dict[str, int]" = field(default_factory=dict)
    admitted_by_tenant: "dict[str, int]" = field(default_factory=dict)
    shed_by_tenant: "dict[str, int]" = field(default_factory=dict)
    n_prefetch_runs: int = 0
    n_prefetched_columns: int = 0
    n_local_certified: int = 0
    n_local_escalated: int = 0
    lanes: "dict[tuple, LaneStats]" = field(default_factory=dict)

    @property
    def shed_rate(self) -> float:
        total = self.n_admitted + self.n_shed
        return self.n_shed / total if total else 0.0

    def to_jsonable(self) -> dict:
        """The snapshot with lane tuples flattened to strings (JSON keys)."""
        return {
            "n_admitted": self.n_admitted,
            "n_shed": self.n_shed,
            "shed_rate": self.shed_rate,
            "shed_by_reason": dict(self.shed_by_reason),
            "admitted_by_tenant": dict(self.admitted_by_tenant),
            "shed_by_tenant": dict(self.shed_by_tenant),
            "n_prefetch_runs": self.n_prefetch_runs,
            "n_prefetched_columns": self.n_prefetched_columns,
            "n_local_certified": self.n_local_certified,
            "n_local_escalated": self.n_local_escalated,
            "lanes": {
                "/".join(str(part) for part in lane): {
                    "count": s.count,
                    "p50_ms": s.p50_ms,
                    "p90_ms": s.p90_ms,
                    "p99_ms": s.p99_ms,
                    "max_ms": s.max_ms,
                }
                for lane, s in self.lanes.items()
            },
        }


class GatewayStats:
    """Thread-safe counters + per-lane latency reservoirs."""

    def __init__(self, reservoir: int = DEFAULT_RESERVOIR) -> None:
        if reservoir < 1:
            raise ValueError(f"reservoir must be >= 1, got {reservoir}")
        self._reservoir = int(reservoir)
        self._lock = threading.Lock()
        self._n_admitted = 0
        self._shed_by_reason: Counter = Counter()
        self._admitted_by_tenant: Counter = Counter()
        self._shed_by_tenant: Counter = Counter()
        self._n_prefetch_runs = 0
        self._n_prefetched_columns = 0
        self._n_local_certified = 0
        self._n_local_escalated = 0
        self._latencies: "dict[tuple, deque]" = {}

    def record_admitted(self, tenant: str) -> None:
        with self._lock:
            self._n_admitted += 1
            self._admitted_by_tenant[tenant] += 1

    def record_shed(self, tenant: str, reason: str) -> None:
        with self._lock:
            self._shed_by_reason[reason] += 1
            self._shed_by_tenant[tenant] += 1

    def record_latency(self, lane: tuple, seconds: float) -> None:
        with self._lock:
            samples = self._latencies.get(lane)
            if samples is None:
                samples = self._latencies[lane] = deque(maxlen=self._reservoir)
            samples.append(float(seconds))

    def record_prefetch(self, n_columns: int) -> None:
        with self._lock:
            self._n_prefetch_runs += 1
            self._n_prefetched_columns += int(n_columns)

    def record_local(self, escalated: bool) -> None:
        """Count one local fast-path query by its outcome."""
        with self._lock:
            if escalated:
                self._n_local_escalated += 1
            else:
                self._n_local_certified += 1

    def snapshot(self) -> GatewaySnapshot:
        with self._lock:
            lanes = {}
            for lane, samples in self._latencies.items():
                if not samples:
                    continue
                ms = np.asarray(samples, dtype=np.float64) * 1000.0
                lanes[lane] = LaneStats(
                    count=int(ms.size),
                    p50_ms=float(np.percentile(ms, 50)),
                    p90_ms=float(np.percentile(ms, 90)),
                    p99_ms=float(np.percentile(ms, 99)),
                    max_ms=float(ms.max()),
                )
            return GatewaySnapshot(
                n_admitted=self._n_admitted,
                n_shed=sum(self._shed_by_reason.values()),
                shed_by_reason=dict(self._shed_by_reason),
                admitted_by_tenant=dict(self._admitted_by_tenant),
                shed_by_tenant=dict(self._shed_by_tenant),
                n_prefetch_runs=self._n_prefetch_runs,
                n_prefetched_columns=self._n_prefetched_columns,
                n_local_certified=self._n_local_certified,
                n_local_escalated=self._n_local_escalated,
                lanes=lanes,
            )
