"""The multi-tenant serving front: lane routing over shared serving state.

:class:`RankGateway` is the one object a service embeds.  It owns:

- a registry of named graphs (tenants address graphs by name, never by
  object);
- one shared :class:`repro.serving.ColumnCache` — every lane's flushes and
  the prefetcher's warming land in the same per-node column store, so a
  column solved for one tenant serves every tenant (columns are per-node
  facts, not per-tenant data);
- a bounded set of **lanes**: one :class:`repro.serving.MicroBatcher` per
  ``(graph, measure, alpha)``, created lazily on first use and evicted
  least-recently-used when ``max_lanes`` would be exceeded (an evicted lane
  is closed, which flushes and resolves its outstanding futures — eviction
  never strands a caller);
- an :class:`repro.gateway.admission.AdmissionController` consulted *before*
  enqueueing, so a shed query never owns a future;
- a :class:`repro.gateway.frequency.FrequencyEstimator` fed by every
  admitted query, which the background prefetcher reads;
- a :class:`repro.gateway.stats.GatewayStats` recording admissions, sheds,
  prefetch activity, and per-lane latency quantiles.

The per-lane queue-depth bound is *hard*: each lane carries an admission
lock held across the depth check and the enqueue, so concurrent submitters
cannot overshoot ``max_queue_depth`` (asserted under thread churn by the
gateway test suite).  The lock is per-lane — one lane's inline size-trigger
solve never blocks admission to other lanes.
"""

from __future__ import annotations

import itertools
import threading
import time
import weakref
from collections import OrderedDict
from concurrent.futures import Future
from typing import Callable, NamedTuple, Union

import numpy as np

from repro import obs
from repro.core.frank import DEFAULT_ALPHA
from repro.core.queries import Query, normalize_query
from repro.core.roundtrip_plus import DEFAULT_BETA
from repro.gateway.admission import AdmissionConfig, AdmissionController, Shed
from repro.gateway.frequency import FrequencyEstimator
from repro.gateway.stats import GatewaySnapshot, GatewayStats, lane_key_to_str
from repro.graph.digraph import DiGraph
from repro.serving.batcher import MEASURES, MicroBatcher
from repro.serving.cache import ColumnCache

_gateway_ids = itertools.count(1)


def _gateway_collector(ref: "weakref.ref[RankGateway]"):
    """An ``obs`` collector closure holding the gateway only weakly.

    Returning ``None`` (the gateway died without ``close()``) makes the
    exporter drop the registration, so test-created gateways cannot leak
    collector entries.
    """

    def collect() -> "dict | None":
        gateway = ref()
        if gateway is None or gateway.closed:
            return None
        return {
            "stats": gateway.stats.snapshot().to_jsonable(),
            "cache": gateway.cache.cache_info().to_jsonable(),
        }

    return collect


class LaneKey(NamedTuple):
    """Identity of one micro-batching lane."""

    graph: str
    measure: str
    alpha: float


class _Lane:
    """A batcher plus the admission lock that makes its depth bound hard."""

    __slots__ = ("batcher", "admission_lock")

    def __init__(self, batcher: MicroBatcher) -> None:
        self.batcher = batcher
        self.admission_lock = threading.Lock()


class RankGateway:
    """Route multi-tenant ranking queries to shared-cache batcher lanes.

    Parameters
    ----------
    graphs:
        ``{name: DiGraph}`` (or a single graph, registered as ``"default"``).
        More graphs may be added later with :meth:`add_graph`.
    cache:
        The shared :class:`ColumnCache`; built with defaults when omitted.
        Its ``alpha`` is the gateway's default query alpha.
    admission:
        An :class:`AdmissionConfig` (or ready controller).  The default
        config rate-limits nothing and bounds lanes at 64 pending queries.
    max_lanes:
        Upper bound on simultaneously-live lanes; the least recently *used*
        lane is closed (flushing its futures) to admit a new one.
    max_batch, max_delay:
        Per-lane :class:`MicroBatcher` trigger configuration.
    beta:
        The ``roundtriprank_plus`` interpolation used by plus-measure lanes.
    local_topk:
        Enable the certified local-push fast path for top-``k`` cache
        misses (:func:`repro.topk.local.local_topk`).  An eligible query —
        ``k`` given, float64 cache — skips the micro-batcher entirely: it
        is solved inline after admission (queue depth 0 — nothing is ever
        enqueued), returning an already-resolved future.  Certified results
        carry unnormalized lower-estimate scores with the oracle's exact
        set and ranking and *never* write partial columns into the cache;
        escalated queries solve their full columns through the shared cache
        (warming it exactly like a batcher miss) and match the batcher path
        bit-for-bit.  Cached columns feed the push as zero-error states, so
        a warm cache makes the fast path cheaper, not divergent.
    workers:
        Worker-process count for cache-miss solves (forwarded to the
        default-built :class:`ColumnCache`; ignored when ``cache`` is
        supplied).  Large miss batches column-shard across the
        :mod:`repro.parallel` pool; small ``method="power"`` batches —
        including a single cold query — row-shard each column's sweeps
        instead, with bit-identical results either way.
    clock:
        Injectable monotonic clock shared by admission and stats (tests).

    Lifecycle: :meth:`start` launches each lane's deadline thread (lanes
    created later start automatically); :meth:`close` is terminal — it
    closes every lane (resolving all outstanding futures) and makes further
    :meth:`submit` calls return ``Shed(reason="closed")``.
    """

    def __init__(
        self,
        graphs: "dict[str, DiGraph] | DiGraph",
        cache: "ColumnCache | None" = None,
        admission: "AdmissionConfig | AdmissionController | None" = None,
        max_lanes: int = 8,
        max_batch: int = 32,
        max_delay: float = 0.01,
        beta: float = DEFAULT_BETA,
        local_topk: bool = False,
        frequency_half_life: float = 30.0,
        workers: "int | None" = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_lanes < 1:
            raise ValueError(f"max_lanes must be >= 1, got {max_lanes}")
        if isinstance(graphs, DiGraph):
            graphs = {"default": graphs}
        if not graphs:
            raise ValueError("at least one graph must be registered")
        self._graphs: "dict[str, DiGraph]" = dict(graphs)
        # workers reaches cache-miss solves through the shared cache: big
        # miss batches column-shard across the pool, small method="power"
        # ones row-shard each column's sweeps (repro.parallel.rows), so a
        # lone cold query no longer pins one core.  Ignored when the caller
        # supplies a ready cache (configure workers on that cache instead).
        self.cache = cache if cache is not None else ColumnCache(workers=workers)
        if isinstance(admission, AdmissionController):
            self.admission = admission
        else:
            self.admission = AdmissionController(admission, clock=clock)
        self.max_lanes = int(max_lanes)
        self.max_batch = int(max_batch)
        self.max_delay = float(max_delay)
        self.beta = float(beta)
        self.local_topk = bool(local_topk)
        self.stats = GatewayStats()
        self.frequency = FrequencyEstimator(half_life=frequency_half_life, clock=clock)
        self._clock = clock
        self._lanes: "OrderedDict[LaneKey, _Lane]" = OrderedDict()
        self._registry_lock = threading.Lock()
        self._started = False
        self._closed = False
        # Publish this gateway's stats + cache view into obs.snapshot();
        # unregistered on close() (or reaped weakly if close never runs).
        self._obs_name = f"gateway-{next(_gateway_ids)}"
        obs.register_collector(self._obs_name, _gateway_collector(weakref.ref(self)))

    # ------------------------------------------------------------------ #
    # Graph registry
    # ------------------------------------------------------------------ #

    def add_graph(self, name: str, graph: DiGraph) -> None:
        """Register another graph under ``name`` (names are immutable)."""
        with self._registry_lock:
            if name in self._graphs:
                raise ValueError(f"graph {name!r} is already registered")
            self._graphs[name] = graph

    def graph(self, name: "str | None" = None) -> DiGraph:
        """The named graph; with one graph registered, ``None`` selects it."""
        return self._resolve_graph(name)[1]

    def _resolve_graph(self, name: "str | None") -> "tuple[str, DiGraph]":
        """``(name, graph)`` under one registry-lock acquisition."""
        with self._registry_lock:
            if name is None:
                if len(self._graphs) == 1:
                    return next(iter(self._graphs.items()))
                raise ValueError(
                    f"graph name required: {sorted(self._graphs)} are registered"
                )
            try:
                return name, self._graphs[name]
            except KeyError:
                raise KeyError(
                    f"unknown graph {name!r}; registered: {sorted(self._graphs)}"
                ) from None

    # ------------------------------------------------------------------ #
    # Lane management
    # ------------------------------------------------------------------ #

    def _lane(self, key: LaneKey) -> "tuple[_Lane | None, _Lane | None]":
        """Get-or-create the lane for ``key``; returns ``(lane, evicted)``.

        Returns ``(None, None)`` when the gateway closed concurrently — a
        lane must never be created after ``close()`` swept the registry, or
        its futures could be stranded unflushed.  The evicted lane (if any)
        must be closed by the caller *outside* the registry lock — closing
        flushes, and a flush may solve.
        """
        with self._registry_lock:
            if self._closed:
                return None, None
            lane = self._lanes.get(key)
            if lane is not None:
                self._lanes.move_to_end(key)
                return lane, None
            batcher = MicroBatcher(
                self._graphs[key.graph],
                measure=key.measure,
                alpha=key.alpha,
                beta=self.beta,
                max_batch=self.max_batch,
                max_delay=self.max_delay,
                cache=self.cache,
            )
            if self._started:
                batcher.start()
            lane = _Lane(batcher)
            self._lanes[key] = lane
            evicted = None
            if len(self._lanes) > self.max_lanes:
                _, evicted = self._lanes.popitem(last=False)
            return lane, evicted

    def lanes(self) -> "list[LaneKey]":
        """Live lane keys, least recently used first."""
        with self._registry_lock:
            return list(self._lanes)

    def total_pending(self) -> int:
        """Queries queued across all lanes (the prefetcher's idle signal)."""
        with self._registry_lock:
            lanes = list(self._lanes.values())
        return sum(lane.batcher.pending for lane in lanes)

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #

    def submit(
        self,
        query: Query,
        tenant: str = "default",
        graph: "str | None" = None,
        measure: str = "roundtriprank",
        alpha: "float | None" = None,
        k: "int | None" = None,
    ) -> "Union[Future, Shed]":
        """Admit-and-enqueue one query; a future, or a typed :class:`Shed`.

        Invalid *queries* (unknown graph/measure, out-of-range nodes, bad
        ``k``) raise synchronously — they are caller bugs, not load, and
        must not be confused with shedding.  An admitted query's future
        always resolves: to the score vector (or ``(indices, scores)`` when
        ``k`` is given), or to the solver's exception.
        """
        if measure not in MEASURES:
            raise ValueError(f"measure must be one of {MEASURES}, got {measure!r}")
        graph_name, graph_obj = self._resolve_graph(graph)
        if alpha is None:
            alpha = getattr(self.cache, "alpha", DEFAULT_ALPHA)
        key = LaneKey(graph_name, measure, float(alpha))
        # Validate before admission: a malformed query (or k) must raise even
        # when it would have been shed, and must never consume a rate token.
        nodes, weights = normalize_query(graph_obj, query)
        if k is not None and k < 1:
            raise ValueError(f"k must be >= 1, got {k}")

        # Certified local fast path: only top-k requests (full vectors need
        # full columns anyway) and only against a float64 cache (probed
        # columns enter certification as zero-error states, which a lossy
        # dtype cannot honor).
        if self.local_topk and k is not None and self.cache.dtype == np.float64:
            with obs.span(
                "gateway.submit",
                tenant=tenant,
                lane=lane_key_to_str(tuple(key)),
                k=int(k),
                path="local",
            ):
                return self._submit_local(
                    query, tenant, graph_obj, key, measure, float(alpha), k,
                    nodes, weights,
                )

        with obs.span(
            "gateway.submit",
            tenant=tenant,
            lane=lane_key_to_str(tuple(key)),
            k=-1 if k is None else int(k),
            path="batcher",
        ) as root_span:
            while True:
                lane, evicted = self._lane(key)
                if lane is None:  # gateway closed
                    shed = Shed(reason="closed", tenant=tenant, lane=tuple(key))
                    self.stats.record_shed(tenant, shed.reason)
                    root_span.set_attributes(outcome="shed", reason=shed.reason)
                    return shed
                if evicted is not None:
                    self._close_lane(evicted)
                with lane.admission_lock:
                    if lane.batcher.closed:
                        continue  # evicted between lookup and lock: retry fresh
                    depth = lane.batcher.pending
                    with obs.span("gateway.admission", tenant=tenant, depth=depth) as adm:
                        shed = self.admission.admit(tenant, tuple(key), depth)
                        if shed is not None:
                            adm.set_attributes(outcome="shed", reason=shed.reason)
                        else:
                            adm.set_attributes(outcome="admitted")
                    if shed is not None:
                        self.stats.record_shed(tenant, shed.reason)
                        root_span.set_attributes(outcome="shed", reason=shed.reason)
                        return shed
                    started = self._clock()
                    # Submitting under the admission lock is the hard depth
                    # bound: admission-check and enqueue must be atomic or two
                    # racing callers can both pass the check and overfill the
                    # lane.  MicroBatcher.submit only appends to a deque under
                    # its own leaf lock — it never blocks on batch completion.
                    # The enqueue-time span context rides on the request so
                    # the eventual flush joins this trace.
                    with obs.span("gateway.lane", depth=depth) as lane_span:
                        future = lane.batcher.submit(  # repro: ignore[lock-across-blocking]
                            query, k=k, parsed=(nodes, weights),
                            trace=lane_span.context(),
                        )
                break
            root_span.set_attributes(outcome="admitted")

        self.stats.record_admitted(tenant)
        for node, weight in zip(nodes.tolist(), weights.tolist()):
            self.frequency.record(tenant, (graph_name, float(alpha)), node, weight)
        clock = self._clock

        def _record(_f: Future, lane_key=tuple(key), t0=started) -> None:
            self.stats.record_latency(lane_key, clock() - t0)

        future.add_done_callback(_record)
        return future

    def _submit_local(
        self,
        query: Query,
        tenant: str,
        graph_obj: DiGraph,
        key: LaneKey,
        measure: str,
        alpha: float,
        k: int,
        nodes,
        weights,
    ) -> "Union[Future, Shed]":
        """Inline certified local top-k: admit, solve, resolve — no queue.

        Admission sees queue depth 0 (nothing is enqueued), so only the
        rate limit can shed.  The cache participates twice, read-only on
        the happy path: already-exact columns join the push as zero-error
        states via ``column_probe``, and an escalation solves its full
        columns *through* ``cache.get_many`` — bit-identical arithmetic to
        :meth:`MicroBatcher._score_columns_cached`, and the columns it
        stores are complete, so a partial push result can never poison the
        cache.
        """
        from repro.topk.local import local_topk as _local_topk

        if self._closed:
            shed = Shed(reason="closed", tenant=tenant, lane=tuple(key))
            self.stats.record_shed(tenant, shed.reason)
            return shed
        with obs.span("gateway.admission", tenant=tenant, depth=0) as adm:
            shed = self.admission.admit(tenant, tuple(key), 0)
            adm.set_attributes(outcome="admitted" if shed is None else "shed")
        if shed is not None:
            self.stats.record_shed(tenant, shed.reason)
            return shed
        started = self._clock()
        self.stats.record_admitted(tenant)
        graph_name = key.graph
        for node, weight in zip(nodes.tolist(), weights.tolist()):
            self.frequency.record(tenant, (graph_name, alpha), node, weight)
        cache = self.cache

        def probe(kind: str, node: int) -> "np.ndarray | None":
            # contains() is counter-free; a column evicted between the
            # probe and the get would simply be re-solved (correct, just
            # not free), so the race is benign.
            if cache.contains(graph_obj, kind, node, alpha):
                return cache.get(graph_obj, kind, node, alpha)
            return None

        def solve_columns(kind: str, node_list: "list[int]") -> np.ndarray:
            return np.stack(
                cache.get_many(graph_obj, kind, node_list, alpha), axis=1
            )

        future: Future = Future()
        try:
            result = _local_topk(
                graph_obj,
                query,
                k,
                alpha,
                measure=measure,
                beta=self.beta,
                solve_columns=solve_columns,
                column_probe=probe,
            )
        except BaseException as exc:  # noqa: B036 - delivered through the future
            self.stats.record_latency(tuple(key), self._clock() - started)
            future.set_exception(exc)
            return future
        self.stats.record_local(escalated=result.escalated)
        self.stats.record_latency(tuple(key), self._clock() - started)
        future.set_result((result.indices, result.scores))
        return future

    def ask(self, query: Query, **kwargs):
        """Synchronous convenience: submit, flush the lane, return scores.

        Raises ``RuntimeError`` if the query is shed — the synchronous
        caller has no queue to retry from.
        """
        result = self.submit(query, **kwargs)
        if isinstance(result, Shed):
            raise RuntimeError(
                f"query shed ({result.reason}) for tenant {result.tenant!r}"
            )
        self.flush_all()
        return result.result()

    def flush_all(self) -> int:
        """Force-solve everything pending in every lane; total flushed."""
        with self._registry_lock:
            lanes = list(self._lanes.values())
        return sum(lane.batcher.flush() for lane in lanes)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> "RankGateway":
        """Start deadline threads on all lanes, current and future."""
        with self._registry_lock:
            if self._closed:
                raise RuntimeError("RankGateway is closed and cannot be restarted")
            self._started = True
            lanes = list(self._lanes.values())
        for lane in lanes:
            lane.batcher.start()
        return self

    def _close_lane(self, lane: _Lane) -> None:
        with lane.admission_lock:
            lane.batcher.close()

    def close(self) -> None:
        """Terminal: close every lane (their futures resolve), shed new work."""
        with self._registry_lock:
            if self._closed:
                return
            self._closed = True
            lanes = list(self._lanes.values())
            self._lanes.clear()
        for lane in lanes:
            self._close_lane(lane)
        obs.unregister_collector(self._obs_name)

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "RankGateway":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def snapshot(self) -> GatewaySnapshot:
        """Current :class:`GatewaySnapshot` (see also ``cache.cache_info()``)."""
        return self.stats.snapshot()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        snap = self.stats.snapshot()
        return (
            f"RankGateway(graphs={sorted(self._graphs)}, lanes={len(self._lanes)}/"
            f"{self.max_lanes}, admitted={snap.n_admitted}, shed={snap.n_shed})"
        )
