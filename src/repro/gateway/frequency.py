"""Exponentially-decayed per-tenant query-frequency estimates.

The prefetcher needs to know *which columns are hot right now*, per tenant
and per ``(graph, alpha)`` solver configuration — raw lifetime counts would
keep warming last week's hot set.  :class:`FrequencyEstimator` keeps one
exponentially-decayed counter per ``(tenant, group, node)``:

    ``count(t) = count(t0) * 0.5 ** ((t - t0) / half_life) + increment``

Decay is applied lazily at touch/read time from stored timestamps, so idle
entries cost nothing until queried.  Clocks are injectable so tests can
drive decay deterministically.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Callable, Hashable


class FrequencyEstimator:
    """Decayed per-(tenant, group, node) query counters with a top-N view.

    ``group`` is an opaque hashable — the gateway uses ``(graph_name,
    alpha)`` so estimates never mix columns that could not share a cache
    entry.  ``max_nodes_per_group`` bounds memory per (tenant, group): when
    full, recording a *new* node drops the coldest of a bounded sample of
    entries, CLOCK-style (surviving sampled entries rotate to the back so
    the window cycles through the group).  An exact min would scan the
    whole group — with its per-entry decay ``pow`` — on every one-off node
    of a tail-heavy stream, under the lock, on the synchronous submit
    path; the sampled second-chance scan keeps the insert O(1) while hot
    entries still survive (they are never the sampled minimum).
    """

    #: entries examined per sampled eviction; 16 keeps a hot entry's
    #: survival odds high while the scan stays trivially cheap.
    _EVICT_SAMPLE = 16

    def __init__(
        self,
        half_life: float = 30.0,
        max_nodes_per_group: int = 4096,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if half_life <= 0:
            raise ValueError(f"half_life must be > 0, got {half_life}")
        if max_nodes_per_group < 1:
            raise ValueError(
                f"max_nodes_per_group must be >= 1, got {max_nodes_per_group}"
            )
        self.half_life = float(half_life)
        self.max_nodes_per_group = int(max_nodes_per_group)
        self._clock = clock
        #: (tenant, group) -> {node: (count, last_update)}
        self._counts: "dict[tuple[str, Hashable], dict[int, tuple[float, float]]]" = {}
        self._lock = threading.Lock()

    def _decayed(self, count: float, since: float, now: float) -> float:
        return count * 0.5 ** ((now - since) / self.half_life)

    def record(
        self, tenant: str, group: Hashable, node: int, increment: float = 1.0
    ) -> None:
        """Count one observation of ``node`` (``increment`` supports query
        weights: a multi-node query records each node with its weight)."""
        now = self._clock()
        with self._lock:
            nodes = self._counts.setdefault((tenant, group), {})
            entry = nodes.get(int(node))
            current = self._decayed(entry[0], entry[1], now) if entry else 0.0
            if entry is None and len(nodes) >= self.max_nodes_per_group:
                # CLOCK-style sampled eviction over the insertion-order
                # prefix: evict the coldest of the sample, rotate the
                # survivors to the back (second chance) so the window
                # cycles through the whole group instead of pinning old
                # hot entries at the front forever.
                sample = list(itertools.islice(nodes.items(), self._EVICT_SAMPLE))
                coldest = min(
                    sample, key=lambda kv: self._decayed(kv[1][0], kv[1][1], now)
                )[0]
                for key, value in sample:
                    del nodes[key]
                    if key != coldest:
                        nodes[key] = value
            nodes[int(node)] = (current + float(increment), now)

    def top(self, tenant: str, group: Hashable, n: int) -> "list[tuple[int, float]]":
        """The ``n`` hottest nodes as ``(node, decayed_count)``, hottest first."""
        now = self._clock()
        with self._lock:
            nodes = self._counts.get((tenant, group), {})
            scored = [
                (node, self._decayed(count, since, now))
                for node, (count, since) in nodes.items()
            ]
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        return scored[: max(0, int(n))]

    def groups(self) -> "list[tuple[str, Hashable]]":
        """Every ``(tenant, group)`` with recorded traffic."""
        with self._lock:
            return list(self._counts)

    def clear(self) -> None:
        with self._lock:
            self._counts.clear()
