"""Background prefetch: warm hot columns during idle capacity.

Cache warming used to be manual (`ColumnCache.warm` with a hand-picked node
list).  The :class:`Prefetcher` closes that gap: it watches the gateway's
per-tenant decayed query-frequency estimates and, whenever the lanes are
idle, keeps the hottest F/T columns resident through the batch engine —
re-solving evicted ones and refreshing live ones — so a tenant's next burst
finds its head already warm.

Design points:

- **Idle-gated.**  A prefetch round runs only when the gateway's total
  pending queue depth is at most ``idle_depth`` (default 0).  Foreground
  queries always win; prefetch consumes capacity that would otherwise sit
  unused.  (The solve itself is not preemptible — bound the intrusion with
  ``batch_size``.)
- **Per-tenant fairness.**  Each round takes up to ``per_tenant`` candidate
  nodes per ``(tenant, graph, alpha)`` group — one loud tenant cannot
  monopolize the warming budget.
- **Batch-engine warming, ``workers=`` aware.**  All selected nodes of one
  ``(graph, alpha)`` are warmed in one ``cache.warm`` call (two multi-column
  solves), optionally sharded across the :mod:`repro.parallel` process pool
  with ``workers=``.
- **Deterministic testing.**  :meth:`Prefetcher.run_once` performs exactly
  one round synchronously; the background thread (:meth:`start` /
  :meth:`stop`, or the context manager) just calls it on an interval.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from repro import obs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.gateway.core import RankGateway


class Prefetcher:
    """Warms the gateway cache with per-tenant hot columns when idle.

    Parameters
    ----------
    gateway:
        The :class:`repro.gateway.RankGateway` whose frequency estimates,
        cache and graphs drive the warming.
    per_tenant:
        Max columns *selected* per (tenant, graph, alpha) group per round.
    batch_size:
        Max columns *warmed* per round across all groups — bounds how long
        one round occupies the solver even with many hot tenants.
    interval:
        Background-thread sleep between rounds (seconds).
    idle_depth:
        A round is skipped while ``gateway.total_pending()`` exceeds this.
    min_score:
        Candidates below this decayed frequency are ignored — noise-floor
        guard so one-off queries never trigger solves.
    chunk:
        Nodes warmed per ``cache.warm`` call within a round (both kinds
        each).  Chunking bounds how long each solve occupies the engine and
        gives the round its LRU-friendly touch order; larger chunks amortize
        pool dispatch better when ``workers`` is set.
    workers:
        Shard warm solves across the process pool (``cache.warm(workers=)``).
    """

    def __init__(
        self,
        gateway: "RankGateway",
        per_tenant: int = 16,
        batch_size: int = 64,
        interval: float = 0.05,
        idle_depth: int = 0,
        min_score: float = 0.0,
        chunk: int = 16,
        workers: "int | None" = None,
    ) -> None:
        if per_tenant < 1:
            raise ValueError(f"per_tenant must be >= 1, got {per_tenant}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        if idle_depth < 0:
            raise ValueError(f"idle_depth must be >= 0, got {idle_depth}")
        if chunk < 1:
            raise ValueError(f"chunk must be >= 1, got {chunk}")
        self.gateway = gateway
        self.per_tenant = int(per_tenant)
        self.batch_size = int(batch_size)
        self.interval = float(interval)
        self.idle_depth = int(idle_depth)
        self.min_score = float(min_score)
        self.chunk = int(chunk)
        self.workers = workers
        self._thread: "threading.Thread | None" = None
        self._stop = threading.Event()

    # ------------------------------------------------------------------ #
    # One synchronous round
    # ------------------------------------------------------------------ #

    def plan(self) -> "dict[tuple[str, float], list[int]]":
        """The nodes one round would warm, grouped by ``(graph, alpha)``.

        Pure read: consults the frequency estimates, never solves.
        Candidates are gathered per ``(tenant, graph, alpha)`` group (at
        most ``per_tenant`` each — the fairness cap that stops one tenant
        flooding a round), then ranked **globally by decayed frequency**
        and cut at ``batch_size``.

        Hot nodes are planned *regardless of current residency* — that is
        deliberate, not waste.  Warming runs through ``cache.get_many``,
        where a resident column is an O(1) hit that refreshes its recency
        (protecting it from the very inserts the round is about to make)
        and an evicted one is re-solved.  A plan that skipped resident
        columns would warm each tenant's cold *tail* while the insert
        traffic evicted the hot heads — measurably worse than no prefetch
        at all on LRU caches under budget pressure.  Exposed for tests and
        capacity planning.
        """
        gateway = self.gateway
        candidates: "list[tuple[float, str, float, int]]" = []
        for tenant, group in gateway.frequency.groups():
            graph_name, alpha = group
            taken = 0
            for node, score in gateway.frequency.top(tenant, group, self.per_tenant):
                if taken >= self.per_tenant:
                    break
                if score <= self.min_score:
                    break  # sorted: everything after is colder
                candidates.append((float(score), graph_name, float(alpha), int(node)))
                taken += 1
        # Hottest first; deterministic tie-break on (graph, alpha, node).
        candidates.sort(key=lambda c: (-c[0], c[1], c[2], c[3]))
        selected: "dict[tuple[str, float], list[int]]" = {}
        chosen: "set[tuple[str, float, int]]" = set()
        for score, graph_name, alpha, node in candidates:
            if len(chosen) >= self.batch_size:
                break
            if (graph_name, alpha, node) in chosen:
                continue  # two tenants share a hot node: warm it once
            chosen.add((graph_name, alpha, node))
            selected.setdefault((graph_name, alpha), []).append(node)
        return selected

    def run_once(self, force: bool = False) -> int:
        """Run one prefetch round; returns the number of columns *solved*.

        Skips (returning 0 without counting a run) when the gateway is
        busier than ``idle_depth``, unless ``force=True``.  The round warms
        every planned node (F and T kinds); already-resident columns are
        refreshed in place and not counted — the return value counts the
        planned columns found absent immediately before their warm (so
        concurrent foreground misses are never attributed to prefetch).
        """
        gateway = self.gateway
        if gateway.closed:
            return 0
        if not force and gateway.total_pending() > self.idle_depth:
            return 0
        selected = self.plan()
        if not selected:
            return 0
        cache = gateway.cache
        warmed = 0
        with obs.span(
            "gateway.prefetch", planned=sum(len(nodes) for nodes in selected.values())
        ) as ospan:
            for (graph_name, alpha), nodes in selected.items():
                graph = gateway.graph(graph_name)
                # Warm coldest-planned first, in chunks covering both kinds
                # per node, so the hottest planned columns are the *most
                # recently* touched when the round ends.  A single
                # hottest-first pass per kind would leave the hottest inserts
                # oldest — first out the door under LRU the moment the round
                # itself fills the budget.
                for end in range(len(nodes), 0, -self.chunk):
                    chunk = nodes[max(0, end - self.chunk):end]
                    # Count only *planned* columns absent right before this
                    # chunk's warm — a global miss delta would misattribute
                    # concurrent foreground misses to prefetch.
                    warmed += sum(
                        not cache.contains(graph, kind, node, alpha)
                        for node in chunk
                        for kind in ("f", "t")
                    )
                    cache.warm(graph, chunk, alpha, workers=self.workers)
            ospan.set_attributes(warmed=warmed)
        gateway.stats.record_prefetch(warmed)
        return warmed

    # ------------------------------------------------------------------ #
    # Background thread
    # ------------------------------------------------------------------ #

    def start(self) -> "Prefetcher":
        """Run rounds every ``interval`` seconds in a daemon thread."""
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="gateway-prefetcher", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the background thread (idempotent; restartable)."""
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join()
        self._thread = None

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.run_once()
            except Exception:  # pragma: no cover - defensive
                # A failed warm round must never kill the loop; the columns
                # stay cold and the next foreground miss surfaces the error.
                continue

    @property
    def running(self) -> bool:
        return self._thread is not None

    def __enter__(self) -> "Prefetcher":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
