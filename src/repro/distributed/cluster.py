"""The simulated AP/GP cluster: striping, query execution, accounting.

Builds the architecture of Sect. V-B2 in-process: one active processor and
``n_gps`` graph processors over round-robin stripes.  Queries run the exact
2SBound algorithm through :class:`RemoteGraphAccess`; the returned stats
carry everything Fig. 12–13 plot (active-set size, query time) plus network
accounting the paper only discusses qualitatively.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.frank import DEFAULT_ALPHA
from repro.distributed.active_processor import RemoteGraphAccess
from repro.distributed.graph_processor import GraphProcessor
from repro.distributed.striping import StripeMap
from repro.graph.digraph import DiGraph
from repro.topk.twosbound import DEFAULT_M_F, DEFAULT_M_T, TopKResult, twosbound_topk
from repro.utils.timer import Timer


@dataclass(frozen=True)
class ClusterQueryStats:
    """Per-query accounting from a distributed 2SBound run."""

    query: int
    wall_time_s: float
    active_nodes: int
    active_arcs: int
    active_set_bytes: int
    messages: int
    network_bytes: int


class SimulatedCluster:
    """One AP plus ``n_gps`` striped GPs over a given graph."""

    def __init__(self, graph: DiGraph, n_gps: int) -> None:
        if n_gps < 1:
            raise ValueError(f"n_gps must be >= 1, got {n_gps}")
        self.graph = graph
        self.stripes = StripeMap(graph.n_nodes, n_gps)
        self.processors = [
            GraphProcessor(gp_id, graph, self.stripes.owned_nodes(gp_id))
            for gp_id in range(n_gps)
        ]
        self._has_self_loops = bool(graph.transition.diagonal().any())

    @property
    def n_gps(self) -> int:
        return len(self.processors)

    def total_gp_memory_bytes(self) -> int:
        """Aggregate stripe memory across GPs.

        Roughly twice the graph size: every arc is stored by both its
        source's owner (out-list) and its destination's owner (in-list).
        """
        return sum(gp.memory_bytes for gp in self.processors)

    def new_access(self) -> RemoteGraphAccess:
        """A fresh AP-side access (empty active set) for one query."""
        return RemoteGraphAccess(
            self.stripes, self.processors, self.graph.n_nodes, self._has_self_loops
        )

    def query(
        self,
        query: int,
        k: int,
        epsilon: float = 0.01,
        alpha: float = DEFAULT_ALPHA,
        m_f: int = DEFAULT_M_F,
        m_t: int = DEFAULT_M_T,
        scheme: str = "2sbound",
    ) -> tuple[TopKResult, ClusterQueryStats]:
        """Run one distributed top-K query; returns result and accounting."""
        access = self.new_access()
        with Timer() as timer:
            result = twosbound_topk(
                access,
                query,
                k,
                epsilon=epsilon,
                alpha=alpha,
                m_f=m_f,
                m_t=m_t,
                scheme=scheme,
            )
        stats = ClusterQueryStats(
            query=query,
            wall_time_s=timer.elapsed,
            active_nodes=access.active_node_count,
            active_arcs=access.active_arc_count,
            active_set_bytes=access.active_set_bytes,
            messages=access.network.messages_sent,
            network_bytes=access.network.bytes_sent,
        )
        result.stats.update(
            active_set_bytes=stats.active_set_bytes,
            messages=stats.messages,
            network_bytes=stats.network_bytes,
        )
        return result, stats
