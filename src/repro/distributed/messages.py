"""AP <-> GP message types with byte accounting.

The simulation does not serialize anything for real; instead every message
carries a ``payload_bytes`` computed from a fixed cost model so that network
volume is measurable and deterministic:

- a node id costs 8 bytes;
- an adjacency entry (neighbor id + transition probability) costs 12 bytes,
  matching :attr:`DiGraph.ARC_BYTES`;
- a degree costs 4 bytes;
- every message pays a fixed 64-byte envelope (headers/framing).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

NODE_ID_BYTES = 8
ADJ_ENTRY_BYTES = 12
DEGREE_BYTES = 4
ENVELOPE_BYTES = 64


@dataclass(frozen=True)
class AdjacencyRequest:
    """AP asks a GP for the adjacency of the owned ``nodes``.

    ``want_out`` / ``want_in`` select which directions to ship.
    """

    gp_id: int
    nodes: np.ndarray
    want_out: bool = True
    want_in: bool = False

    @property
    def payload_bytes(self) -> int:
        return ENVELOPE_BYTES + int(self.nodes.size) * NODE_ID_BYTES


@dataclass(frozen=True)
class AdjacencyEntry:
    """Adjacency of one node as shipped by its owning GP."""

    node: int
    out_neighbors: "np.ndarray | None"
    out_probs: "np.ndarray | None"
    in_neighbors: "np.ndarray | None"
    in_probs: "np.ndarray | None"
    out_degree: int

    @property
    def payload_bytes(self) -> int:
        total = NODE_ID_BYTES + DEGREE_BYTES
        if self.out_neighbors is not None:
            total += int(self.out_neighbors.size) * ADJ_ENTRY_BYTES
        if self.in_neighbors is not None:
            total += int(self.in_neighbors.size) * ADJ_ENTRY_BYTES
        return total


@dataclass(frozen=True)
class AdjacencyResponse:
    """GP reply carrying the requested adjacency entries."""

    gp_id: int
    entries: list[AdjacencyEntry]

    @property
    def payload_bytes(self) -> int:
        return ENVELOPE_BYTES + sum(e.payload_bytes for e in self.entries)


@dataclass(frozen=True)
class DegreeRequest:
    """AP asks a GP for node degrees.

    ``kind`` selects the direction: ``"out"`` serves the BCA benefit
    heuristic, ``"in"`` the t-side border bookkeeping (in-list lengths).
    """

    gp_id: int
    nodes: np.ndarray
    kind: str = "out"

    def __post_init__(self) -> None:
        if self.kind not in ("out", "in"):
            raise ValueError(f"kind must be 'out' or 'in', got {self.kind!r}")

    @property
    def payload_bytes(self) -> int:
        return ENVELOPE_BYTES + int(self.nodes.size) * NODE_ID_BYTES


@dataclass(frozen=True)
class DegreeResponse:
    """GP reply with out-degrees aligned to the requested nodes."""

    gp_id: int
    nodes: np.ndarray
    degrees: np.ndarray

    @property
    def payload_bytes(self) -> int:
        return ENVELOPE_BYTES + int(self.nodes.size) * (NODE_ID_BYTES + DEGREE_BYTES)


@dataclass
class NetworkStats:
    """Running totals of simulated network traffic."""

    messages_sent: int = 0
    bytes_sent: int = 0
    #: request/response counts per GP id
    per_gp_messages: dict[int, int] = field(default_factory=dict)

    def record(self, gp_id: int, payload_bytes: int) -> None:
        """Account one message of ``payload_bytes`` to/from ``gp_id``."""
        self.messages_sent += 1
        self.bytes_sent += payload_bytes
        self.per_gp_messages[gp_id] = self.per_gp_messages.get(gp_id, 0) + 1
