"""Active processor (AP): runs 2SBound against striped graph processors.

The AP never holds the full graph.  It incrementally assembles the *active
set* — exactly the adjacency lists 2SBound's expansions request — in a local
cache, fetching misses from the owning GPs in per-GP batched messages
(``prefetch`` is called by the expansion code at natural batch boundaries).

:class:`RemoteGraphAccess` implements the same :class:`GraphAccess`
interface the local algorithm uses, so the distributed run is bit-for-bit
the same algorithm — only the adjacency transport differs.
"""

from __future__ import annotations

import numpy as np

from repro.distributed.graph_processor import GraphProcessor
from repro.distributed.messages import (
    AdjacencyRequest,
    DegreeRequest,
    NetworkStats,
)
from repro.distributed.striping import StripeMap
from repro.graph.digraph import DiGraph
from repro.topk.graphaccess import GraphAccess


class RemoteGraphAccess(GraphAccess):
    """Graph access that fetches adjacency from GPs and caches it locally."""

    def __init__(
        self,
        stripes: StripeMap,
        processors: list[GraphProcessor],
        n_nodes: int,
        has_self_loops: bool,
    ) -> None:
        if stripes.n_gps != len(processors):
            raise ValueError(
                f"stripe map expects {stripes.n_gps} GPs, got {len(processors)}"
            )
        self._stripes = stripes
        self._processors = processors
        self._n_nodes = n_nodes
        self._has_self_loops = has_self_loops
        self._out_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._in_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._degree_cache: dict[int, int] = {}
        self._in_degree_cache: dict[int, int] = {}
        self.network = NetworkStats()

    # ------------------------------ fetch ------------------------------ #

    def _fetch(self, nodes: np.ndarray, want_out: bool, want_in: bool) -> None:
        """Fetch adjacency of ``nodes`` (cache misses only), batched per GP."""
        missing = [
            int(v)
            for v in np.asarray(nodes, dtype=np.int64).tolist()
            if (want_out and v not in self._out_cache)
            or (want_in and v not in self._in_cache)
        ]
        if not missing:
            return
        for gp_id, owned in self._stripes.partition(np.asarray(missing)).items():
            request = AdjacencyRequest(
                gp_id=gp_id, nodes=owned, want_out=want_out, want_in=want_in
            )
            self.network.record(gp_id, request.payload_bytes)
            response = self._processors[gp_id].serve_adjacency(request)
            self.network.record(gp_id, response.payload_bytes)
            for entry in response.entries:
                if entry.out_neighbors is not None:
                    self._out_cache[entry.node] = (entry.out_neighbors, entry.out_probs)
                if entry.in_neighbors is not None:
                    self._in_cache[entry.node] = (entry.in_neighbors, entry.in_probs)
                self._degree_cache[entry.node] = entry.out_degree

    def prefetch(self, nodes: np.ndarray, out: bool = True, incoming: bool = False) -> None:
        self._fetch(nodes, want_out=out, want_in=incoming)

    # --------------------------- GraphAccess --------------------------- #

    @property
    def n_nodes(self) -> int:
        return self._n_nodes

    def out_edges(self, node: int) -> tuple[np.ndarray, np.ndarray]:
        if node not in self._out_cache:
            self._fetch(np.asarray([node]), want_out=True, want_in=False)
        return self._out_cache[node]

    def in_edges(self, node: int) -> tuple[np.ndarray, np.ndarray]:
        if node not in self._in_cache:
            self._fetch(np.asarray([node]), want_out=False, want_in=True)
        return self._in_cache[node]

    def out_degree(self, node: int) -> int:
        if node not in self._degree_cache:
            self.out_degrees(np.asarray([node]))
        return self._degree_cache[node]

    def out_degrees(self, nodes: np.ndarray) -> np.ndarray:
        return self._degrees(nodes, "out", self._degree_cache)

    def in_degrees(self, nodes: np.ndarray) -> np.ndarray:
        return self._degrees(nodes, "in", self._in_degree_cache)

    def _degrees(self, nodes: np.ndarray, kind: str, cache: dict[int, int]) -> np.ndarray:
        nodes = np.asarray(nodes, dtype=np.int64)
        missing = np.asarray(
            [v for v in nodes.tolist() if v not in cache], dtype=np.int64
        )
        if missing.size:
            for gp_id, owned in self._stripes.partition(missing).items():
                request = DegreeRequest(gp_id=gp_id, nodes=owned, kind=kind)
                self.network.record(gp_id, request.payload_bytes)
                response = self._processors[gp_id].serve_degrees(request)
                self.network.record(gp_id, response.payload_bytes)
                for node, degree in zip(response.nodes.tolist(), response.degrees.tolist()):
                    cache[node] = degree
        return np.asarray([cache[int(v)] for v in nodes.tolist()], dtype=np.int64)

    @property
    def has_self_loops(self) -> bool:
        return self._has_self_loops

    # --------------------------- accounting ---------------------------- #

    @property
    def active_node_count(self) -> int:
        """Distinct nodes whose adjacency (either direction) is cached."""
        nodes = set(self._out_cache) | set(self._in_cache)
        for neighbors, _ in self._out_cache.values():
            nodes.update(int(v) for v in neighbors)
        for neighbors, _ in self._in_cache.values():
            nodes.update(int(v) for v in neighbors)
        return len(nodes)

    @property
    def active_arc_count(self) -> int:
        """Cached adjacency entries (per direction)."""
        return sum(v[0].size for v in self._out_cache.values()) + sum(
            v[0].size for v in self._in_cache.values()
        )

    @property
    def active_set_bytes(self) -> int:
        """Model-based size of the assembled active set (Fig. 12)."""
        return (
            self.active_node_count * DiGraph.NODE_BYTES
            + self.active_arc_count * DiGraph.ARC_BYTES
        )
