"""Data striping (Sect. V-B2): round-robin node assignment across GPs.

"We assign nodes (along with their edges) in the graph to GPs in a
round-robin fashion" — node ``v`` lives on graph processor ``v mod n_gps``.
Striping aggregates the main memory of the processors and lets the AP fetch
different parts of the graph in parallel.
"""

from __future__ import annotations

import numpy as np


class StripeMap:
    """Round-robin ownership map from node id to graph-processor id."""

    def __init__(self, n_nodes: int, n_gps: int) -> None:
        if n_nodes < 0:
            raise ValueError(f"n_nodes must be >= 0, got {n_nodes}")
        if n_gps < 1:
            raise ValueError(f"n_gps must be >= 1, got {n_gps}")
        self.n_nodes = n_nodes
        self.n_gps = n_gps

    def owner(self, node: int) -> int:
        """GP id owning ``node``."""
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} out of range [0, {self.n_nodes})")
        return node % self.n_gps

    def owned_nodes(self, gp_id: int) -> np.ndarray:
        """All node ids owned by ``gp_id``."""
        if not 0 <= gp_id < self.n_gps:
            raise ValueError(f"gp_id {gp_id} out of range [0, {self.n_gps})")
        return np.arange(gp_id, self.n_nodes, self.n_gps, dtype=np.int64)

    def partition(self, nodes: np.ndarray) -> dict[int, np.ndarray]:
        """Group ``nodes`` by owning GP (for batched requests)."""
        nodes = np.asarray(nodes, dtype=np.int64)
        owners = nodes % self.n_gps
        return {
            int(gp): nodes[owners == gp]
            for gp in np.unique(owners)
        }

    def assignment(self) -> np.ndarray:
        """Owner GP id for every node (length ``n_nodes``)."""
        return np.arange(self.n_nodes, dtype=np.int64) % self.n_gps
