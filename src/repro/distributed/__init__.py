"""Distributed 2SBound (Sect. V-B): AP/GP architecture over striped memory."""

from repro.distributed.active_processor import RemoteGraphAccess
from repro.distributed.cluster import ClusterQueryStats, SimulatedCluster
from repro.distributed.graph_processor import GraphProcessor
from repro.distributed.messages import (
    AdjacencyEntry,
    AdjacencyRequest,
    AdjacencyResponse,
    DegreeRequest,
    DegreeResponse,
    NetworkStats,
)
from repro.distributed.striping import StripeMap

__all__ = [
    "RemoteGraphAccess",
    "ClusterQueryStats",
    "SimulatedCluster",
    "GraphProcessor",
    "StripeMap",
    "AdjacencyEntry",
    "AdjacencyRequest",
    "AdjacencyResponse",
    "DegreeRequest",
    "DegreeResponse",
    "NetworkStats",
]
