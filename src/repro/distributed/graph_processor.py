"""Graph processor (GP): owns a stripe of the graph and serves adjacency.

"Each GP stores a subset of the nodes and edges in its main memory ...
Upon an expansion request from AP during query processing, each GP
identifies the requested active nodes and edges stored in it, and sends
them back to AP."  (Sect. V-B2)

The stripe is stored as plain per-node adjacency dictionaries — the GP
deliberately does *not* keep the full graph object, so a bug in the AP
cannot accidentally read unowned state.
"""

from __future__ import annotations

import numpy as np

from repro.distributed.messages import (
    AdjacencyEntry,
    AdjacencyRequest,
    AdjacencyResponse,
    DegreeRequest,
    DegreeResponse,
)
from repro.graph.digraph import DiGraph


class GraphProcessor:
    """One striped worker holding the adjacency of its owned nodes."""

    def __init__(self, gp_id: int, graph: DiGraph, owned_nodes: np.ndarray) -> None:
        self.gp_id = gp_id
        self._out: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._in: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._out_degree: dict[int, int] = {}
        out_degrees = graph.out_degrees
        for node in np.asarray(owned_nodes, dtype=np.int64).tolist():
            neighbors, probs = graph.out_edges(node)
            self._out[node] = (neighbors.copy(), probs.copy())
            neighbors_in, probs_in = graph.in_edges(node)
            self._in[node] = (neighbors_in.copy(), probs_in.copy())
            self._out_degree[node] = int(out_degrees[node])
        self.requests_served = 0

    @property
    def n_owned(self) -> int:
        """Number of nodes stored on this GP."""
        return len(self._out)

    @property
    def memory_bytes(self) -> int:
        """Model-based memory footprint of this stripe."""
        arcs = sum(v[0].size for v in self._out.values()) + sum(
            v[0].size for v in self._in.values()
        )
        return self.n_owned * DiGraph.NODE_BYTES + arcs * DiGraph.ARC_BYTES

    def owns(self, node: int) -> bool:
        """Whether this GP stores the stripe containing ``node``."""
        return node in self._out

    def serve_adjacency(self, request: AdjacencyRequest) -> AdjacencyResponse:
        """Answer an adjacency request for owned nodes.

        Raises ``KeyError`` when asked for a node this GP does not own —
        that would be an AP routing bug, not a recoverable condition.
        """
        if request.gp_id != self.gp_id:
            raise ValueError(f"request routed to GP {self.gp_id} but addressed {request.gp_id}")
        entries: list[AdjacencyEntry] = []
        for node in request.nodes.tolist():
            if node not in self._out:
                raise KeyError(f"GP {self.gp_id} does not own node {node}")
            out_n, out_p = self._out[node] if request.want_out else (None, None)
            in_n, in_p = self._in[node] if request.want_in else (None, None)
            entries.append(
                AdjacencyEntry(
                    node=node,
                    out_neighbors=out_n,
                    out_probs=out_p,
                    in_neighbors=in_n,
                    in_probs=in_p,
                    out_degree=self._out_degree[node],
                )
            )
        self.requests_served += 1
        return AdjacencyResponse(gp_id=self.gp_id, entries=entries)

    def serve_degrees(self, request: DegreeRequest) -> DegreeResponse:
        """Answer a bulk degree request (out-degrees or in-list lengths)."""
        if request.gp_id != self.gp_id:
            raise ValueError(f"request routed to GP {self.gp_id} but addressed {request.gp_id}")
        if request.kind == "out":
            degrees = np.asarray(
                [self._out_degree[node] for node in request.nodes.tolist()],
                dtype=np.int64,
            )
        else:
            degrees = np.asarray(
                [self._in[node][0].size for node in request.nodes.tolist()],
                dtype=np.int64,
            )
        self.requests_served += 1
        return DegreeResponse(gp_id=self.gp_id, nodes=request.nodes, degrees=degrees)
