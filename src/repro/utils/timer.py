"""A small wall-clock timer used by the benchmark harness and examples."""

from __future__ import annotations

import time


class Timer:
    """Context-manager stopwatch measuring elapsed wall-clock seconds.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start
        self._start = None

    @property
    def elapsed_ms(self) -> float:
        """Elapsed time in milliseconds."""
        return self.elapsed * 1000.0
