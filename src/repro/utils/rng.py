"""Seeded random-number-generator helpers.

Every stochastic component in the library accepts either a seed, an existing
:class:`numpy.random.Generator`, or ``None``.  ``ensure_rng`` normalizes all
three into a ``Generator`` so that experiments are reproducible end to end.
"""

from __future__ import annotations

import numbers

import numpy as np


def ensure_rng(seed: "int | np.random.Generator | None") -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    - ``None`` gives a fresh, OS-seeded generator;
    - an integer gives a deterministic generator;
    - an existing generator is passed through unchanged.
    """
    if seed is None:
        # The one sanctioned OS-entropy escape hatch: ensure_rng(None) is
        # the documented "I explicitly don't want reproducibility" spelling
        # every other module is required to route through.
        return np.random.default_rng()  # repro: ignore[np-random-legacy]
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, numbers.Integral):
        return np.random.default_rng(int(seed))
    raise TypeError(f"seed must be None, an int, or a numpy Generator, got {type(seed).__name__}")


def spawn_rngs(seed: "int | np.random.Generator | None", count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent child generators.

    Useful to give each query / worker / dataset section its own stream so
    that changing the number of samples in one place does not perturb the
    randomness used elsewhere.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    return ensure_rng(seed).spawn(count)
