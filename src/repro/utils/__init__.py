"""Shared utilities: validation, RNG handling, timing and an addressable heap.

These are the small substrate pieces the rest of the library builds on.
Nothing in here knows about graphs or ranking.
"""

from repro.utils.heap import AddressableMaxHeap
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.timer import Timer
from repro.utils.validation import (
    check_in_range,
    check_node_id,
    check_positive,
    check_probability,
)

__all__ = [
    "AddressableMaxHeap",
    "ensure_rng",
    "spawn_rngs",
    "Timer",
    "check_in_range",
    "check_node_id",
    "check_positive",
    "check_probability",
]
