"""An addressable max-heap keyed by item.

Used by the top-K machinery: BCA expansion repeatedly extracts the node with
the largest *benefit* (Sect. V-A of the paper) and border-node expansion the
node with the largest upper bound.  Both need priorities that change over
time, so the heap supports ``push`` (insert or update) and lazy deletion.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Hashable, Iterator


class AddressableMaxHeap:
    """Max-heap with O(log n) insert/update/pop and O(1) priority lookup.

    Updates are handled with the standard lazy-invalidation trick: stale
    entries stay in the underlying list and are discarded on pop.
    """

    _REMOVED = object()

    def __init__(self) -> None:
        self._heap: list[list] = []
        self._entries: dict[Hashable, list] = {}
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._entries

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._entries)

    def priority(self, item: Hashable) -> float:
        """Current priority of ``item`` (raises ``KeyError`` if absent)."""
        return -self._entries[item][0]

    def push(self, item: Hashable, priority: float) -> None:
        """Insert ``item`` or update its priority."""
        if item in self._entries:
            self.remove(item)
        entry = [-float(priority), next(self._counter), item]
        self._entries[item] = entry
        heapq.heappush(self._heap, entry)

    def remove(self, item: Hashable) -> None:
        """Remove ``item`` (raises ``KeyError`` if absent)."""
        entry = self._entries.pop(item)
        entry[2] = self._REMOVED

    def pop(self) -> tuple[Hashable, float]:
        """Pop and return ``(item, priority)`` with the largest priority."""
        while self._heap:
            neg_priority, _, item = heapq.heappop(self._heap)
            if item is not self._REMOVED:
                del self._entries[item]
                return item, -neg_priority
        raise IndexError("pop from an empty heap")

    def peek(self) -> tuple[Hashable, float]:
        """Return ``(item, priority)`` with the largest priority, non-destructively."""
        while self._heap:
            neg_priority, _, item = self._heap[0]
            if item is self._REMOVED:
                heapq.heappop(self._heap)
                continue
            return item, -neg_priority
        raise IndexError("peek at an empty heap")

    def pop_many(self, count: int) -> list[tuple[Hashable, float]]:
        """Pop up to ``count`` items in descending priority order."""
        out: list[tuple[Hashable, float]] = []
        while len(out) < count and self._entries:
            out.append(self.pop())
        return out
