"""Argument validation helpers.

All public entry points of the library validate their inputs through these
helpers so that error messages are uniform and informative.
"""

from __future__ import annotations

import numbers


def check_probability(value: float, name: str) -> float:
    """Validate that ``value`` is a probability in the closed interval [0, 1].

    Returns the value as a float so callers can write
    ``alpha = check_probability(alpha, "alpha")``.
    """
    if not isinstance(value, numbers.Real):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_in_range(
    value: float,
    name: str,
    low: float,
    high: float,
    *,
    inclusive_low: bool = True,
    inclusive_high: bool = True,
) -> float:
    """Validate that ``value`` lies in the given interval and return it."""
    if not isinstance(value, numbers.Real):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    low_ok = value >= low if inclusive_low else value > low
    high_ok = value <= high if inclusive_high else value < high
    if not (low_ok and high_ok):
        lo_b = "[" if inclusive_low else "("
        hi_b = "]" if inclusive_high else ")"
        raise ValueError(f"{name} must be in {lo_b}{low}, {high}{hi_b}, got {value}")
    return value


def check_positive(value: float, name: str, *, strict: bool = True) -> float:
    """Validate that ``value`` is positive (strictly, by default)."""
    if not isinstance(value, numbers.Real):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    value = float(value)
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is a strictly positive integer and return it.

    The shared sample-count contract: every Monte Carlo entry point (the
    estimators, the walk samplers, the sharded parallel sampler) rejects
    zero and negative counts through this helper so the failure mode is
    loud and uniform instead of an empty-array surprise.
    """
    if not isinstance(value, numbers.Integral):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    return value


def check_node_id(node: int, n_nodes: int, name: str = "node") -> int:
    """Validate that ``node`` is a valid node id for a graph of ``n_nodes``."""
    if not isinstance(node, numbers.Integral):
        raise TypeError(f"{name} must be an integer node id, got {type(node).__name__}")
    node = int(node)
    if not 0 <= node < n_nodes:
        raise ValueError(f"{name} must be in [0, {n_nodes - 1}], got {node}")
    return node
