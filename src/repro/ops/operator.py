"""The one operator abstraction every solver multiplies through.

Before this module existed, operator handling was smeared across four code
paths: :mod:`repro.engine.batch` cached prepared CSR copies and talked to a
private scipy entry point directly, the single-query solvers re-derived
``P^T`` on every call, :mod:`repro.graph.transition` stepped distributions
with raw ``@``, and every :mod:`repro.parallel` worker rebuilt its own
float32 operator copy.  A kernel improvement could not land anywhere without
touching all four.

:class:`TransitionOperator` owns one *oriented* prepared CSR (``P`` or
``P^T``) plus everything derived from it — per-dtype variants, per-kernel
blocked preparations, damp-scaled copies for the Chebyshev phases — and
dispatches ``matmat`` / ``matvec`` to the pluggable kernels in
:mod:`repro.ops.kernels`.  Use :func:`get_operator` for graph-backed
operators (cached per ``(graph, orientation)`` with weak references) and
:meth:`TransitionOperator.from_csr` for detached ones (shared-memory worker
attachments, ad-hoc matrices).

Guarantees
----------
- ``matvec`` is kernel-independent (always the canonical scipy product), so
  single-vector paths are bit-stable no matter what ``REPRO_KERNEL`` says.
- ``matmat`` results are bit-identical across all registered kernels (the
  blocked slab accumulation replays the unblocked addition order; see
  :mod:`repro.ops.kernels`), asserted by the ``tests/ops`` parity suite.
- ``out=`` never aliases an input: ``matmat`` rejects overlapping ``out``
  and ``x`` buffers outright, closing the aliasing bug class the PR 3
  ``ColumnCache`` view fix dealt with downstream.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict

import numpy as np
import scipy.sparse as sp

from repro import obs
from repro.ops import kernels as _kernels

_OBS_MATMAT = obs.counter(
    "repro_kernel_matmat_total", "Kernel matmat dispatches by resolved kernel.",
    labels=("kernel",),
)

#: dtypes a TransitionOperator serves; anything else is upcast to float64.
_SUPPORTED_DTYPES = (np.dtype(np.float64), np.dtype(np.float32))

#: Most damp-scaled operator copies kept per operator.  alpha is a public
#: per-call knob, so an unbounded cache would accrete one full values copy
#: per distinct alpha for the life of the graph; in practice a deployment
#: uses one or two alphas, so a small LRU keeps the steady state hit.
_DAMPED_CACHE_MAX = 4

#: Most per-kernel preparations kept per operator.  A blocked-kernel
#: preparation is a full re-sliced copy of the matrix, so the bound caps
#: resident operator copies when batch widths roam across buckets.
_PREPARED_CACHE_MAX = 4


def _as_csr(matrix) -> sp.csr_matrix:
    if sp.issparse(matrix):
        csr = matrix.tocsr()
    else:
        csr = sp.csr_matrix(matrix)
    if not csr.has_sorted_indices:
        # Sorted indices are load-bearing: the blocked kernel's bit-exactness
        # argument assumes ascending-column accumulation order.
        csr = csr.copy()
        csr.sort_indices()
    return csr


class TransitionOperator:
    """A prepared, kernel-dispatching view of one oriented CSR operator.

    Construct via :func:`get_operator` (graph-backed, cached) or
    :meth:`from_csr` (detached).  Instances are immutable in value; all
    mutation is memoization of derived state (dtype variants, kernel
    preparations, damped copies) guarded by a lock, so an operator can be
    shared across threads (the serving layer does).
    """

    def __init__(self, matrix: sp.csr_matrix, *, transpose: "bool | None" = None) -> None:
        base = _as_csr(matrix)
        if base.shape[0] != base.shape[1]:
            raise ValueError(f"transition operators are square, got shape {base.shape}")
        self._transpose = transpose
        self._variants: "dict[str, sp.csr_matrix]" = {base.dtype.name: base}
        self._base_dtype = base.dtype
        self._prepared: "OrderedDict[tuple, tuple]" = OrderedDict()
        self._damped: "OrderedDict[tuple, TransitionOperator]" = OrderedDict()
        self._reordered: "dict[object, object]" = {}
        self._has_self_loops: "bool | None" = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_csr(
        cls,
        matrix: sp.spmatrix,
        float32: "sp.spmatrix | None" = None,
        transpose: "bool | None" = None,
    ) -> "TransitionOperator":
        """Wrap an existing CSR matrix (detached from any graph).

        ``float32`` optionally supplies a pre-built float32 variant — the
        shared-memory workers pass the attached float32 segment here so no
        per-worker copy is ever derived.
        """
        op = cls(matrix, transpose=transpose)
        if float32 is not None:
            f32 = _as_csr(float32)
            if f32.shape != op.shape:
                raise ValueError(
                    f"float32 variant shape {f32.shape} != operator shape {op.shape}"
                )
            if f32.dtype != np.float32:
                raise ValueError(f"float32 variant has dtype {f32.dtype}")
            op._variants[np.dtype(np.float32).name] = f32
        return op

    # ------------------------------------------------------------------ #
    # Shape and variants
    # ------------------------------------------------------------------ #

    @property
    def shape(self) -> "tuple[int, int]":
        return self._variants[self._base_dtype.name].shape

    @property
    def n_nodes(self) -> int:
        return self.shape[0]

    @property
    def transpose(self) -> "bool | None":
        """Orientation relative to the graph's ``P`` (``None`` if detached)."""
        return self._transpose

    @property
    def nnz(self) -> int:
        return self._variants[self._base_dtype.name].nnz

    def matrix(self, dtype=np.float64) -> sp.csr_matrix:
        """The prepared CSR in ``dtype`` (derived once, then cached).

        The returned matrix is shared state — callers must not mutate it.
        """
        dtype = np.dtype(dtype)
        if dtype not in _SUPPORTED_DTYPES:
            raise ValueError(f"unsupported operator dtype {dtype}")
        found = self._variants.get(dtype.name)
        if found is not None:
            return found
        with self._lock:
            found = self._variants.get(dtype.name)
            if found is None:
                found = self._variants[self._base_dtype.name].astype(dtype)
                self._variants[dtype.name] = found
        return found

    def csr_parts(self, dtype=np.float64) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Raw ``(indptr, indices, data)`` of the prepared CSR in ``dtype``.

        Residual-access hook for the local push solvers
        (:mod:`repro.topk.local`): they gather adjacency rows straight out of
        these arrays instead of paying scipy's per-row fancy-indexing
        allocations.  The arrays are the operator's own shared state —
        callers must treat them as read-only.
        """
        m = self.matrix(dtype)
        return m.indptr, m.indices, m.data

    @property
    def has_self_loops(self) -> bool:
        """Whether the operator's diagonal carries any mass (computed once).

        The push solvers' Proposition-4-style error discount assumes return
        trips take at least two steps, which a self-loop breaks — the graph
        layer's dangling-node convention introduces exactly such loops, so
        bound code must consult this instead of assuming loop-freeness.
        """
        found = self._has_self_loops
        if found is None:
            # Idempotent bool; a racing duplicate computation is harmless.
            found = bool(self._variants[self._base_dtype.name].diagonal().any())
            self._has_self_loops = found
        return found

    def damped(self, damp: float, dtype=np.float32) -> "TransitionOperator":
        """The operator with its data scaled by ``damp``, cached per (damp, dtype).

        The Chebyshev phases of :func:`repro.engine.batch.power_iteration_batch`
        sweep with ``damp * O`` folded into the matrix; caching the scaled
        copy here (structure shared, data scaled once) removes the per-solve
        ``operator * damp`` allocation the old code paid.  The cache is a
        small LRU (see ``_DAMPED_CACHE_MAX``): alpha is a per-call knob, so
        a sweep over many alphas must not accrete one values copy each for
        the life of the graph.
        """
        dtype = np.dtype(dtype)
        key = (float(damp), dtype.name)
        with self._lock:
            found = self._damped.get(key)
            if found is not None:
                self._damped.move_to_end(key)
                return found
        m = self.matrix(dtype)  # outside the lock: matrix() takes it too
        with self._lock:
            found = self._damped.get(key)
            if found is None:
                scaled = sp.csr_matrix(
                    (m.data * dtype.type(damp), m.indices, m.indptr),
                    shape=m.shape,
                    copy=False,
                )
                scaled.has_sorted_indices = True
                found = TransitionOperator(scaled, transpose=self._transpose)
                self._damped[key] = found
                while len(self._damped) > _DAMPED_CACHE_MAX:
                    self._damped.popitem(last=False)
            else:
                self._damped.move_to_end(key)
        return found

    # ------------------------------------------------------------------ #
    # Products
    # ------------------------------------------------------------------ #

    def _dtype_for(self, array: np.ndarray) -> np.dtype:
        dtype = array.dtype
        return dtype if dtype in _SUPPORTED_DTYPES else np.dtype(np.float64)

    def _prepared_state(self, kernel: _kernels.Kernel, matrix: sp.csr_matrix, n_cols: int):
        # Bucket the column count so one prepared state serves every nearby
        # batch width without rebuilding slabs per call.  The upper clamp is
        # lossless: past 1024 float64 columns the slab width has already hit
        # the _MIN_SLAB_COLS floor, so a larger bucket prepares identically.
        bucket = 1
        while bucket < n_cols:
            bucket <<= 1
        bucket = min(max(bucket, 8), 1024)
        # state_token folds in knobs the prepared state depends on (the
        # threaded kernel's row partition tracks REPRO_KERNEL_THREADS).
        key = (kernel.name, matrix.dtype.name, bucket, kernel.state_token())
        with self._lock:
            found = self._prepared.get(key)
            if found is not None:
                self._prepared.move_to_end(key)
                return found[0]
        # Prepare outside the lock (a blocked preparation re-slices the whole
        # matrix); a racing duplicate preparation is wasted work, not a bug.
        state = kernel.prepare(matrix, bucket)
        with self._lock:
            found = self._prepared.get(key)
            if found is None:
                found = (state,)
                self._prepared[key] = found
                while len(self._prepared) > _PREPARED_CACHE_MAX:
                    self._prepared.popitem(last=False)
            else:
                self._prepared.move_to_end(key)
        return found[0]

    def matmat(
        self,
        x: np.ndarray,
        out: "np.ndarray | None" = None,
        accumulate: bool = False,
        kernel: "str | None" = None,
    ) -> np.ndarray:
        """``operator @ x`` for a dense ``n x q`` block, kernel-dispatched.

        - ``out=None`` allocates the result; otherwise the product is written
          into ``out`` (must be C-contiguous, matching shape/dtype, and must
          not alias ``x`` or the operator's own data — aliasing raises).
        - ``accumulate=True`` computes ``out += operator @ x`` (requires
          ``out``) with no temporary, the form the solver sweeps rely on.
        - ``kernel`` overrides the process-wide selection for this call.

        The computation runs in ``x``'s dtype (float32 or float64; anything
        else is upcast to float64) against the matching prepared variant.
        """
        x = np.asarray(x)
        if x.ndim != 2:
            raise ValueError(f"matmat expects a 2-D block, got shape {x.shape}")
        dtype = self._dtype_for(x)
        if x.dtype != dtype:
            x = x.astype(dtype)
        matrix = self.matrix(dtype)
        if x.shape[0] != matrix.shape[1]:
            raise ValueError(
                f"operand rows {x.shape[0]} != operator columns {matrix.shape[1]}"
            )
        if not x.flags.c_contiguous:
            x = np.ascontiguousarray(x)
        if out is None:
            if accumulate:
                raise ValueError("accumulate=True requires an explicit out= buffer")
            out = np.empty((matrix.shape[0], x.shape[1]), dtype=dtype)
        else:
            if out.shape != (matrix.shape[0], x.shape[1]):
                raise ValueError(
                    f"out has shape {out.shape}, expected {(matrix.shape[0], x.shape[1])}"
                )
            if out.dtype != dtype:
                raise ValueError(f"out has dtype {out.dtype}, expected {dtype}")
            if not out.flags.c_contiguous or not out.flags.writeable:
                raise ValueError("out must be a writable C-contiguous buffer")
            if np.may_share_memory(out, x) or np.may_share_memory(out, matrix.data):
                raise ValueError("out must not alias the operand or the operator")
        kern, report = _kernels.resolve(kernel)
        _kernels.warn_if_fallback(report)
        _OBS_MATMAT.inc(kernel=report.name)
        state = self._prepared_state(kern, matrix, x.shape[1])
        kern.matmat(state, matrix, x, out, accumulate)
        return out

    def matvec(self, v: np.ndarray) -> np.ndarray:
        """``operator @ v`` for one dense vector.

        Deliberately kernel-independent (the canonical scipy product on the
        operator's base matrix, with scipy's usual dtype upcast): cache
        blocking has nothing to win on a single gather column, and keeping
        one code path makes every single-query solve bit-stable across
        kernel selections — a float32 operand upcasts to the base precision
        instead of silently degrading the whole solve.
        """
        return self._variants[self._base_dtype.name] @ np.asarray(v)

    def rmatvec(self, v: np.ndarray) -> np.ndarray:
        """``v @ operator`` (a row-vector step; kernel-independent)."""
        return np.asarray(np.asarray(v) @ self._variants[self._base_dtype.name]).ravel()

    def reordered(self, node_types=None):
        """The gather-friendly reordered view (memoized per type labeling).

        Builds a :class:`repro.ops.reorder.ReorderedOperator` whose products
        run through a degree/type-clustered symmetric permutation and equal
        this operator's bit for bit (see :mod:`repro.ops.reorder`).  The
        permutation is computed once at first call — effectively operator
        build time for hot serving paths — and memoized; pass the graph's
        ``node_types`` so BibNet's typed id clusters drive the grouping.
        """
        from repro.ops.reorder import ReorderedOperator

        key = None if node_types is None else np.asarray(node_types).tobytes()
        with self._lock:
            found = self._reordered.get(key)
            if found is not None:
                return found
        candidate = ReorderedOperator(self, node_types=node_types)
        with self._lock:
            found = self._reordered.setdefault(key, candidate)
        return found


# --------------------------------------------------------------------------- #
# Graph-backed caching
# --------------------------------------------------------------------------- #

#: Per-graph cache of the two oriented operators; weak keys let graphs die
#: (and their prepared variants with them).
_GRAPH_OPERATORS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_graph_lock = threading.Lock()


def get_operator(graph, transpose: bool = False) -> TransitionOperator:
    """The cached :class:`TransitionOperator` of ``graph``'s ``P`` (or ``P^T``).

    ``transpose=True`` is the F-Rank orientation (``P^T``), ``transpose=False``
    the T-Rank / walk orientation (``P``).  Both orientations of one graph
    share a cache entry; repeated calls are dictionary lookups.
    """
    key = bool(transpose)
    with _graph_lock:
        per_graph = _GRAPH_OPERATORS.get(graph)
        if per_graph is None:
            per_graph = {}
            _GRAPH_OPERATORS[graph] = per_graph
        found = per_graph.get(key)
        if found is not None:
            return found
    # Build outside the lock: the transpose is O(n_edges) and unrelated
    # graphs should not serialize their cold starts.
    base = graph.transition.T.tocsr() if transpose else graph.transition
    candidate = TransitionOperator(base, transpose=key)
    with _graph_lock:
        found = per_graph.get(key)
        if found is None:
            per_graph[key] = candidate
            found = candidate
    return found


def as_operator(
    operator,
    float32: "sp.spmatrix | None" = None,
) -> TransitionOperator:
    """Coerce ``operator`` into a :class:`TransitionOperator`.

    Passes existing operators through unchanged; wraps scipy sparse
    matrices detached (no graph cache).  ``float32`` is forwarded to
    :meth:`TransitionOperator.from_csr` for pre-built low-precision
    variants.
    """
    if isinstance(operator, TransitionOperator):
        return operator
    if sp.issparse(operator):
        return TransitionOperator.from_csr(operator, float32=float32)
    raise TypeError(
        f"expected a TransitionOperator or scipy sparse matrix, got {type(operator)!r}"
    )
