"""Pluggable CSR matmat kernels behind :class:`repro.ops.TransitionOperator`.

Every F-Rank / T-Rank / RoundTripRank solve reduces to repeated
``operator @ X`` sweeps over one CSR matrix, so the sparse matmat kernel is
the load-bearing hot path of the whole library.  This module isolates it
behind a small registry of interchangeable kernels:

- ``scipy`` (default) — scipy's CSR matmat, routed through the
  accumulate-form ``csr_matvecs`` sparsetools entry point when the running
  scipy still exposes it (no per-sweep allocation or zeroing), with a silent
  pure-``@`` fallback otherwise.
- ``blocked`` — a cache-blocked CSR matmat: the operator is pre-sliced into
  vertical column slabs sized so that each slab's gathered ``X`` rows fit in
  (half of) the L2 cache, and the slabs are accumulated in ascending column
  order.  Because ``csr_matvecs`` adds each ``a_ij * X[j, :]`` contribution
  into the output individually and CSR rows store ascending column indices,
  slab-order accumulation performs *exactly* the same sequence of float
  additions as the unblocked kernel — the blocked result is bit-identical,
  only the memory traffic changes.  Requires the ``csr_matvecs`` capability
  (without it the bit-exact accumulate form is impossible, so the kernel
  reports itself unavailable rather than silently changing results).
- ``numba`` — the same flat accumulation loop JIT-compiled with numba,
  registered only when numba is importable (it is an optional dependency;
  this container/CI image may not ship it).
- ``threaded`` — the row-parallel kernel: CSR *rows* are split into
  nnz-balanced contiguous ranges (computed once from ``indptr`` and cached
  on the operator like the blocked kernel's slabs) and the ranges run
  concurrently — through a numba ``prange`` when numba is importable, else
  through a shared :class:`~concurrent.futures.ThreadPoolExecutor` whose
  tasks call the GIL-releasing ``csr_matvecs`` on one contiguous row slice
  each, so the kernel exists on every host.  Each output row is produced by
  exactly one range with the per-row accumulation order unchanged, so the
  result is **bit-identical** to ``scipy`` for any thread count or
  partition.  Thread count: ``REPRO_KERNEL_THREADS`` (default: all cores).

Kernel selection: the ``REPRO_KERNEL`` environment variable or
:func:`set_kernel`; an unavailable or unknown request falls back to
``scipy`` and the fallback is visible in :func:`active_kernel`'s report.
Bit-exactness across kernels is asserted by the cross-kernel parity suite
(``tests/ops``), so ``method="power"`` results never depend on the kernel
(or worker-count) choice.
"""

from __future__ import annotations

import atexit
import os
import threading
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

# --------------------------------------------------------------------------- #
# Capability probing
# --------------------------------------------------------------------------- #

try:  # accumulate-form CSR matmat: no per-sweep allocation or zeroing
    from scipy.sparse import _sparsetools as _sptools

    _csr_matvecs = _sptools.csr_matvecs
except (ImportError, AttributeError):  # pragma: no cover - scipy internals moved
    _csr_matvecs = None

#: Whether scipy still exposes the private ``csr_matvecs`` accumulate-form
#: entry point.  ``tests/ops/test_capabilities.py`` asserts this is ``True``
#: on the CI scipy version, so an upstream rename fails loudly in CI instead
#: of silently degrading production to the allocating fallback.
HAS_CSR_MATVECS = _csr_matvecs is not None

try:
    import numba as _numba
except ImportError:  # numba is optional; the kernel gates on this
    _numba = None

HAS_NUMBA = _numba is not None

#: Fallback L2 size when the sysfs probe is unavailable (non-Linux).
_DEFAULT_L2_BYTES = 1 << 21


def _probe_l2_bytes() -> int:
    """Per-core L2 cache size in bytes (env override, sysfs, then default).

    ``REPRO_L2_BYTES`` overrides for benchmarking block-size sensitivity.
    """
    override = os.environ.get("REPRO_L2_BYTES", "")
    if override:
        try:
            value = int(override)
            if value > 0:
                return value
        except ValueError:
            pass
    try:
        with open("/sys/devices/system/cpu/cpu0/cache/index2/size") as fh:
            text = fh.read().strip()
        if text.endswith("K"):
            return int(text[:-1]) << 10
        if text.endswith("M"):
            return int(text[:-1]) << 20
        return int(text)
    except (OSError, ValueError):  # pragma: no cover - non-Linux / exotic sysfs
        return _DEFAULT_L2_BYTES


L2_BYTES = _probe_l2_bytes()

#: A slab's gathered ``X`` rows should occupy at most this many bytes, so
#: they stay L2-resident while the CSR arrays and output rows stream
#: through.  The full L2 (not a fraction) measured best on the bench
#: BibNet: the streamed arrays evict little of the gather window, and
#: smaller slabs pay their per-slab row-scan overhead more often.
_SLAB_TARGET_BYTES = L2_BYTES

#: Never slice slabs thinner than this many columns: below it the per-slab
#: row-scan overhead (O(n_rows) per slab) dominates any locality win.
_MIN_SLAB_COLS = 256


#: Environment variable selecting the ``threaded`` kernel's thread count
#: (and the default shard count of :mod:`repro.parallel.rows`).
KERNEL_THREADS_ENV_VAR = "REPRO_KERNEL_THREADS"


def kernel_threads() -> int:
    """Threads the ``threaded`` kernel splits rows across (>= 1).

    ``REPRO_KERNEL_THREADS`` overrides; the default is every core
    (``os.cpu_count()``).  Re-read on every preparation, so tests and
    benches can sweep thread counts without rebuilding operators.
    """
    env = os.environ.get(KERNEL_THREADS_ENV_VAR, "").strip()
    if env:
        try:
            value = int(env)
            if value >= 1:
                return value
        except ValueError:
            pass
    return os.cpu_count() or 1


def capabilities() -> dict:
    """Capability flags the kernel registry probed at import."""
    return {
        "csr_matvecs": HAS_CSR_MATVECS,
        "numba": HAS_NUMBA,
        "l2_bytes": L2_BYTES,
        "kernel_threads": kernel_threads(),
    }


def nnz_balanced_ranges(indptr, n_parts: int) -> "list[tuple[int, int]]":
    """Contiguous row ranges of roughly equal nnz, covering every row.

    The partition of the row-parallel lever: ``threaded``-kernel threads and
    :mod:`repro.parallel.rows` shards each take one contiguous range, so a
    hub-heavy graph (BibNet degree distributions are Zipf-ish) still spreads
    its nonzeros evenly instead of handing one thread all the hot rows.
    Cut points come from ``searchsorted`` on ``indptr`` at the nnz quantiles;
    degenerate targets (one row holding most of the nnz) collapse, so the
    result may have fewer than ``n_parts`` ranges — never an empty one.
    Partition boundaries never affect results: each output row belongs to
    exactly one range and rows are independent in CSR matmat.
    """
    n_rows = int(len(indptr)) - 1
    if n_rows <= 0:
        return [(0, 0)] if n_rows == 0 else []
    n_parts = max(1, min(int(n_parts), n_rows))
    if n_parts == 1:
        return [(0, n_rows)]
    total = int(indptr[-1])
    if total == 0:
        edges = np.linspace(0, n_rows, n_parts + 1).astype(np.int64)
    else:
        targets = np.arange(1, n_parts) * (total / n_parts)
        interior = np.searchsorted(indptr, targets, side="left")
        edges = np.concatenate(([0], interior, [n_rows]))
    edges = np.unique(np.clip(edges, 0, n_rows))
    return [(int(a), int(b)) for a, b in zip(edges[:-1], edges[1:]) if b > a]


# --------------------------------------------------------------------------- #
# The shared kernel thread pool (the ``threaded`` fallback path)
# --------------------------------------------------------------------------- #

#: Thread-name prefix of the kernel pool's workers.  The sanitizer's
#: per-module thread-leak check exempts this prefix: like the process pool,
#: the kernel pool is process-wide by design and torn down by
#: :func:`shutdown_thread_pool` / ``atexit``, not by each test module.
KERNEL_THREAD_NAME_PREFIX = "repro-kernel"

_thread_pool: "ThreadPoolExecutor | None" = None
_thread_pool_size = 0
_thread_pool_lock = threading.Lock()


def _kernel_executor(n_threads: int) -> ThreadPoolExecutor:
    """The shared kernel pool, grown (never shrunk) to ``n_threads``."""
    global _thread_pool, _thread_pool_size
    with _thread_pool_lock:
        if _thread_pool is None or _thread_pool_size < n_threads:
            old, _thread_pool = _thread_pool, ThreadPoolExecutor(
                max_workers=n_threads, thread_name_prefix=KERNEL_THREAD_NAME_PREFIX
            )
            _thread_pool_size = n_threads
        else:
            old = None
        pool = _thread_pool
    if old is not None:
        # Outgrown pool: let in-flight row slices finish, don't block here.
        old.shutdown(wait=False)
    return pool


def shutdown_thread_pool() -> None:
    """Join and drop the kernel thread pool (idempotent; atexit-registered).

    The next ``threaded`` matmat simply starts a fresh pool, so tests can
    call this to assert no kernel threads outlive an explicit teardown.
    """
    global _thread_pool, _thread_pool_size
    with _thread_pool_lock:
        pool, _thread_pool = _thread_pool, None
        _thread_pool_size = 0
    if pool is not None:
        pool.shutdown(wait=True)


atexit.register(shutdown_thread_pool)


def _spmm_accumulate(matrix: sp.csr_matrix, x: np.ndarray, out: np.ndarray) -> None:
    """``out += matrix @ x`` via ``csr_matvecs`` (requires the capability)."""
    n_row, n_col = matrix.shape
    _csr_matvecs(
        n_row, n_col, x.shape[1],
        matrix.indptr, matrix.indices, matrix.data,
        x.ravel(), out.ravel(),
    )


# --------------------------------------------------------------------------- #
# Kernel implementations
# --------------------------------------------------------------------------- #


class Kernel:
    """One matmat implementation.  Stateless; per-matrix state lives in the
    owning :class:`repro.ops.TransitionOperator` via :meth:`prepare`."""

    #: registry name (the value accepted by ``REPRO_KERNEL``).
    name: str = ""

    def available(self) -> "tuple[bool, str | None]":
        """``(usable, reason_if_not)`` under the probed capabilities."""
        return True, None

    def prepare(self, matrix: sp.csr_matrix, n_cols: int):
        """Build (cacheable) per-matrix state for ``n_cols``-wide products."""
        return None

    def state_token(self):
        """Hashable tag folded into the prepared-state cache key.

        Kernels whose prepared state depends on anything besides the matrix
        and ``n_cols`` (the ``threaded`` kernel's row partition depends on
        the thread count) return that dependency here so a changed knob
        invalidates the cache instead of replaying a stale partition.
        """
        return None

    def matmat(self, state, matrix: sp.csr_matrix, x: np.ndarray, out: np.ndarray,
               accumulate: bool) -> None:
        """``out (+)= matrix @ x``; must write every element of ``out``."""
        raise NotImplementedError


class ScipyKernel(Kernel):
    """scipy's CSR matmat (the historical behavior, and the default).

    With the ``csr_matvecs`` capability the product accumulates straight into
    ``out`` (no temporary); without it, falls back to the allocating ``@``.
    """

    name = "scipy"

    def matmat(self, state, matrix, x, out, accumulate):
        if HAS_CSR_MATVECS:
            if not accumulate:
                out[...] = 0
            _spmm_accumulate(matrix, x, out)
        elif accumulate:  # pragma: no cover - scipy internals moved
            out += matrix @ x
        else:  # pragma: no cover - scipy internals moved
            out[...] = matrix @ x


class BlockedKernel(Kernel):
    """Cache-blocked CSR matmat: column slabs sized to keep ``X`` rows in L2.

    The gather ``X[indices[jj], :]`` is what makes scipy's matmat memory-bound
    on large graphs: successive rows of ``X`` are touched in (near-)random
    order over an array far larger than L2.  Slicing the operator into
    vertical slabs ``A = [A_1 | A_2 | ...]`` and accumulating
    ``out += A_k @ X[rows_k]`` slab by slab bounds each pass's gather window
    to ``slab_cols * n_cols * itemsize`` bytes — sized to the L2 — so
    gathered rows are served from cache instead of DRAM.

    Accumulating the slabs in ascending column order replays the exact
    per-element addition sequence of the unblocked ``csr_matvecs`` (CSR rows
    are sorted by column), so results are bit-identical to the ``scipy``
    kernel.  That guarantee *requires* the accumulate-form entry point, hence
    the capability gate.
    """

    name = "blocked"

    def available(self):
        if not HAS_CSR_MATVECS:
            return False, (
                "scipy.sparse._sparsetools.csr_matvecs is unavailable; the "
                "blocked kernel needs its accumulate form for bit-exactness"
            )
        return True, None

    @staticmethod
    def slab_cols(n_cols: int, itemsize: int) -> int:
        """Columns per slab so the slab's ``X`` rows fit the L2 target."""
        fit = _SLAB_TARGET_BYTES // max(1, n_cols * itemsize)
        return max(_MIN_SLAB_COLS, int(fit))

    def prepare(self, matrix, n_cols):
        n_gather = matrix.shape[1]
        width = self.slab_cols(n_cols, matrix.dtype.itemsize)
        if width >= n_gather:
            return None  # X already fits the target; one unblocked pass
        csc = matrix.tocsc()
        slabs = []
        for c0 in range(0, n_gather, width):
            slab = csc[:, c0 : min(n_gather, c0 + width)].tocsr()
            slabs.append((c0, slab))
        return slabs

    def matmat(self, state, matrix, x, out, accumulate):
        if not accumulate:
            out[...] = 0
        if state is None:
            _spmm_accumulate(matrix, x, out)
            return
        for c0, slab in state:
            _spmm_accumulate(slab, x[c0 : c0 + slab.shape[1]], out)


class NumbaKernel(Kernel):
    """JIT-compiled flat CSR matmat (optional; needs importable numba).

    Runs the same per-nonzero accumulation loop as ``csr_matvecs`` in
    ascending index order, so results stay bit-identical to the other
    kernels (numba does not enable FP contraction by default).
    """

    name = "numba"

    def __init__(self) -> None:
        self._jit = None

    def available(self):
        if not HAS_NUMBA:
            return False, "numba is not importable"
        return True, None

    def _compiled(self):
        if self._jit is None:
            @_numba.njit(cache=False)
            def spmm(indptr, indices, data, x, out):  # pragma: no cover - needs numba
                n_row = indptr.shape[0] - 1
                n_vec = x.shape[1]
                for i in range(n_row):
                    for jj in range(indptr[i], indptr[i + 1]):
                        a = data[jj]
                        j = indices[jj]
                        for v in range(n_vec):
                            out[i, v] += a * x[j, v]

            self._jit = spmm
        return self._jit

    def matmat(self, state, matrix, x, out, accumulate):  # pragma: no cover - needs numba
        if not accumulate:
            out[...] = 0
        self._compiled()(matrix.indptr, matrix.indices, matrix.data, x, out)


class ThreadedKernel(Kernel):
    """Row-parallel CSR matmat: nnz-balanced row ranges run concurrently.

    Rows are independent in CSR matmat — every output row ``out[i]`` is a
    function of row ``i``'s nonzeros and ``x`` alone — so splitting the row
    space into contiguous ranges and computing each range concurrently
    performs exactly the per-row accumulation sequence of the unsplit
    kernel.  Results are therefore **bit-identical** to ``scipy`` for any
    thread count and any partition (the parity suite forces uneven ones).

    Two execution modes, picked at :meth:`prepare` time:

    - numba importable → a ``prange`` over the ranges inside one JIT'd
      function (true no-GIL row loop);
    - otherwise → the shared ``repro-kernel`` thread pool, each task calling
      the GIL-releasing ``csr_matvecs`` on one contiguous row slice (the
      slice's adjusted ``indptr`` is precomputed; ``indices``/``data`` are
      zero-copy views), so the kernel exists and parallelizes on every host
      with a modern scipy.

    Prepared state (the partition + per-range CSR slices) is cached on the
    operator like the blocked kernel's slabs; :meth:`state_token` folds the
    current thread count into the cache key so a ``REPRO_KERNEL_THREADS``
    change invalidates stale partitions.
    """

    name = "threaded"

    def __init__(self) -> None:
        self._jit = None

    def available(self):
        if HAS_NUMBA or HAS_CSR_MATVECS:
            return True, None
        return False, (  # pragma: no cover - scipy internals moved
            "neither numba nor scipy.sparse._sparsetools.csr_matvecs is "
            "available; the threaded kernel has no row-parallel backend"
        )

    def state_token(self):
        return kernel_threads()

    def prepare(self, matrix, n_cols):
        n_threads = kernel_threads()
        ranges = nnz_balanced_ranges(matrix.indptr, n_threads)
        if len(ranges) <= 1:
            return None  # one thread or one range: plain sequential pass
        if HAS_NUMBA:  # pragma: no cover - needs numba
            bounds = np.array(
                [r0 for r0, _ in ranges] + [ranges[-1][1]], dtype=np.int64
            )
            return ("numba", bounds)
        slices = []
        indptr, indices, data = matrix.indptr, matrix.indices, matrix.data
        for r0, r1 in ranges:
            lo, hi = int(indptr[r0]), int(indptr[r1])
            # Rebased indptr is a small copy; indices/data stay views.
            slices.append(
                (r0, r1, indptr[r0 : r1 + 1] - lo, indices[lo:hi], data[lo:hi])
            )
        return ("threads", slices)

    def _compiled(self):  # pragma: no cover - needs numba
        if self._jit is None:

            @_numba.njit(parallel=True, cache=False)
            def spmm(bounds, indptr, indices, data, x, out):
                n_vec = x.shape[1]
                for p in _numba.prange(bounds.shape[0] - 1):
                    for i in range(bounds[p], bounds[p + 1]):
                        for jj in range(indptr[i], indptr[i + 1]):
                            a = data[jj]
                            j = indices[jj]
                            for v in range(n_vec):
                                out[i, v] += a * x[j, v]

            self._jit = spmm
        return self._jit

    def matmat(self, state, matrix, x, out, accumulate):
        if not accumulate:
            out[...] = 0
        if state is None:
            if HAS_CSR_MATVECS:
                _spmm_accumulate(matrix, x, out)
            else:  # pragma: no cover - needs numba without csr_matvecs
                self._compiled()(
                    np.array([0, matrix.shape[0]], dtype=np.int64),
                    matrix.indptr, matrix.indices, matrix.data, x, out,
                )
            return
        mode, payload = state
        if mode == "numba":  # pragma: no cover - needs numba
            self._compiled()(payload, matrix.indptr, matrix.indices, matrix.data, x, out)
            return
        n_col = matrix.shape[1]
        n_vec = x.shape[1]
        xflat = x.ravel()
        outflat = out.ravel()  # view (operator-owned outputs are contiguous)

        def run_range(task):
            r0, r1, indptr_adj, idx, dat = task
            _csr_matvecs(
                r1 - r0, n_col, n_vec, indptr_adj, idx, dat,
                xflat, outflat[r0 * n_vec : r1 * n_vec],
            )

        # Lock-free executor use: futures are created and joined with no
        # lock held (the pool lock only guards creation/growth above).
        pool = _kernel_executor(len(payload))
        futures = [pool.submit(run_range, task) for task in payload]
        for future in futures:
            future.result()


#: Registry in fallback-priority order; ``scipy`` is the universal default.
KERNELS: "dict[str, Kernel]" = {
    kernel.name: kernel
    for kernel in (ScipyKernel(), BlockedKernel(), NumbaKernel(), ThreadedKernel())
}

DEFAULT_KERNEL = "scipy"

#: Environment variable consulted (per call) for the requested kernel.
KERNEL_ENV_VAR = "REPRO_KERNEL"

#: Programmatic override set via :func:`set_kernel`; wins over the env var.
_kernel_override: "str | None" = None


@dataclass(frozen=True)
class KernelReport:
    """What :func:`active_kernel` resolved and why.

    ``name`` is the kernel actually in use; ``requested`` what the caller /
    env asked for (``None`` when nothing was requested); ``fallback_reason``
    is non-``None`` exactly when the request could not be honored.
    """

    name: str
    requested: "str | None"
    fallback_reason: "str | None"
    capabilities: dict

    @property
    def is_fallback(self) -> bool:
        return self.fallback_reason is not None


def set_kernel(name: "str | None") -> None:
    """Select the matmat kernel programmatically (``None`` clears).

    Takes precedence over ``REPRO_KERNEL``.  The choice is validated lazily
    at the next multiply, exactly like the env var, so selecting a kernel
    that later turns out unavailable degrades to ``scipy`` with the reason
    recorded in :func:`active_kernel`.  Note the override is process-local:
    :mod:`repro.parallel` workers inherit ``REPRO_KERNEL`` from the parent's
    environment but not this override.
    """
    global _kernel_override
    if name is not None and name not in KERNELS:
        raise ValueError(
            f"unknown kernel {name!r}; registered kernels: {sorted(KERNELS)}"
        )
    _kernel_override = name


def requested_kernel() -> "str | None":
    """The kernel currently being requested (override, else env, else None)."""
    if _kernel_override is not None:
        return _kernel_override
    env = os.environ.get(KERNEL_ENV_VAR, "").strip()
    return env or None


def resolve(name: "str | None" = None) -> "tuple[Kernel, KernelReport]":
    """Resolve a kernel request to a usable kernel, falling back to scipy.

    ``name=None`` consults :func:`requested_kernel`.  Unknown or unavailable
    requests degrade to the ``scipy`` kernel; the report says why.
    """
    requested = name if name is not None else requested_kernel()
    if requested is None:
        kernel = KERNELS[DEFAULT_KERNEL]
        return kernel, KernelReport(kernel.name, None, None, capabilities())
    candidate = KERNELS.get(requested)
    if candidate is None:
        reason = f"unknown kernel {requested!r} (registered: {sorted(KERNELS)})"
    else:
        usable, reason = candidate.available()
        if usable:
            return candidate, KernelReport(candidate.name, requested, None, capabilities())
    fallback = KERNELS[DEFAULT_KERNEL]
    return fallback, KernelReport(fallback.name, requested, reason, capabilities())


def active_kernel() -> KernelReport:
    """Report of the kernel the next multiply will use (and why).

    The resolution is re-run on every call, so changes to ``REPRO_KERNEL``
    or :func:`set_kernel` are reflected immediately.
    """
    _, report = resolve()
    return report


def available_kernels() -> "dict[str, str | None]":
    """``{name: None if usable else reason}`` for every registered kernel."""
    return {name: kernel.available()[1] for name, kernel in KERNELS.items()}


#: requested-kernel names already warned about in this process; fallback is
#: resolved per multiply, so without this a degraded request would warn once
#: per solver sweep (and pool workers record-capture warnings, making that
#: per-sweep churn as well as noise).
_warned_fallbacks: "set[str]" = set()


def warn_if_fallback(report: KernelReport) -> None:
    """RuntimeWarning the first time a given kernel request degrades."""
    if report.is_fallback and report.requested not in _warned_fallbacks:
        _warned_fallbacks.add(report.requested)
        warnings.warn(
            f"requested kernel {report.requested!r} is unavailable "
            f"({report.fallback_reason}); using {report.name!r}",
            RuntimeWarning,
            stacklevel=3,
        )
