"""Unified operator/kernel subsystem: one abstraction for every multiply.

Every ranking solve in this library — F-Rank, T-Rank, RoundTripRank(+),
batched or single-query, sequential or sharded across processes — reduces to
repeated products with one prepared CSR operator.  This package owns that
hot path:

- :class:`TransitionOperator` (:mod:`repro.ops.operator`) — the prepared
  oriented CSR (``P`` or ``P^T``) with cached per-dtype variants, damped
  copies, and per-kernel preparations; exposes ``matmat(x, out=,
  accumulate=)`` / ``matvec`` / ``rmatvec``.  :func:`get_operator` caches
  one per ``(graph, orientation)``.
- pluggable kernels (:mod:`repro.ops.kernels`) — ``scipy`` (default),
  ``blocked`` (cache-blocked column-slab matmat, bit-identical by
  construction), ``numba`` (JIT, when numba is importable), and ``threaded``
  (row-parallel over nnz-balanced contiguous row ranges — numba ``prange``
  or a shared thread pool driving the GIL-releasing ``csr_matvecs``;
  bit-identical for any ``REPRO_KERNEL_THREADS``); selected via
  the ``REPRO_KERNEL`` environment variable or :func:`set_kernel`, with
  capability probing and an :func:`active_kernel` report.
- operator-aware column reordering (:mod:`repro.ops.reorder`) — a
  degree/type-clustered symmetric permutation that shrinks the matmat
  gather window while preserving per-row accumulation order (bit-exact),
  via :meth:`TransitionOperator.reordered`.

Consumers: :mod:`repro.engine.batch` (all batch sweeps),
:mod:`repro.core.frank` / :mod:`repro.core.trank` (single-query paths),
:mod:`repro.graph.transition` (distribution stepping), the top-K oracle
(:mod:`repro.topk.naive`), and :mod:`repro.parallel` workers (which
reconstruct operators from shared memory, float32 variant included).
"""

from repro.ops.kernels import (
    HAS_CSR_MATVECS,
    HAS_NUMBA,
    KERNEL_ENV_VAR,
    KERNEL_THREADS_ENV_VAR,
    KERNELS,
    KernelReport,
    active_kernel,
    available_kernels,
    capabilities,
    kernel_threads,
    nnz_balanced_ranges,
    set_kernel,
    shutdown_thread_pool,
)
from repro.ops.operator import TransitionOperator, as_operator, get_operator
from repro.ops.reorder import ReorderedOperator, gather_permutation

__all__ = [
    "TransitionOperator",
    "get_operator",
    "as_operator",
    "active_kernel",
    "available_kernels",
    "capabilities",
    "set_kernel",
    "kernel_threads",
    "nnz_balanced_ranges",
    "shutdown_thread_pool",
    "gather_permutation",
    "ReorderedOperator",
    "KernelReport",
    "KERNELS",
    "KERNEL_ENV_VAR",
    "KERNEL_THREADS_ENV_VAR",
    "HAS_CSR_MATVECS",
    "HAS_NUMBA",
]
