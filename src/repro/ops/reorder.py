"""Operator-aware column reordering: shrink the matmat gather window.

The CSR matmat's memory bottleneck is the gather ``X[indices[jj], :]``:
successive nonzeros of a row touch rows of ``X`` scattered across an array
far larger than cache.  BibNet node ids cluster by *type* (papers, then
authors, then venues/terms), and within a type the gather traffic is wildly
skewed — a few hub nodes (highly cited papers, prolific authors) absorb most
references.  A symmetric permutation that groups nodes by type and sorts
each type cluster by gather frequency (in-degree of the oriented operator)
packs the hot rows of ``X`` into a small contiguous prefix of each cluster,
so the working set of a sweep drops from "the whole array" to "a few hot
cache lines per type".

Bit-exactness is preserved *per row*: the permuted matrix stores each row's
nonzeros in their **original storage order** (indices are remapped through
the inverse permutation, never re-sorted), so

    ``y = (A_perm @ x[perm])[invperm]``

performs, entry for entry, the identical float additions as ``y = A @ x`` —
each output element is produced by exactly the same ordered accumulation,
just at a different memory address.  The parity suite asserts equality
bit-for-bit.  This is also why :class:`ReorderedOperator` is a standalone
wrapper rather than a :class:`~repro.ops.operator.TransitionOperator`: the
operator's ``_as_csr`` canonicalization (and the blocked kernel's slab
re-slicing) would sort the remapped indices and change the accumulation
order.  Row-parallel execution still composes — the ``threaded`` kernel
splits *rows* and never reorders within one, so the reordered matmat
dispatches through it when row partitioning is active.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.ops import kernels as _kernels


def gather_permutation(matrix: sp.csr_matrix, node_types=None) -> np.ndarray:
    """Degree/type-clustered permutation of ``matrix``'s column space.

    Returns ``perm`` (``int64``, length ``n``) such that new slot ``p``
    holds old node ``perm[p]``.  Nodes are grouped by ``node_types``
    (ascending type id; ``None`` means one cluster) and ordered within each
    cluster by descending gather frequency — how often the node's ``X`` row
    is touched per sweep, i.e. its column count in the oriented CSR — with
    original-id order breaking ties (``lexsort`` is stable), so the
    permutation is deterministic.
    """
    n = matrix.shape[1]
    counts = np.bincount(matrix.indices, minlength=n)
    if node_types is None:
        node_types = np.zeros(n, dtype=np.int32)
    else:
        node_types = np.asarray(node_types)
        if node_types.shape != (n,):
            raise ValueError(
                f"node_types has shape {node_types.shape}, expected ({n},)"
            )
    # lexsort: last key is primary — cluster by type, then hottest first.
    return np.lexsort((-counts, node_types)).astype(np.int64)


def inverse_permutation(perm: np.ndarray) -> np.ndarray:
    """``invperm`` with ``invperm[perm[p]] == p`` (old id -> new slot)."""
    invperm = np.empty_like(perm)
    invperm[perm] = np.arange(len(perm), dtype=perm.dtype)
    return invperm


def permuted_csr(matrix: sp.csr_matrix, perm: np.ndarray,
                 invperm: "np.ndarray | None" = None) -> sp.csr_matrix:
    """Symmetric permutation of ``matrix`` preserving per-row storage order.

    Row ``p`` of the result is old row ``perm[p]`` with its nonzeros in the
    original order and indices remapped through ``invperm`` — deliberately
    **not** re-sorted, so accumulation order (hence bit-exactness) survives.
    The result's ``data``/``indices`` are fresh arrays; treat them as
    immutable, and never call ``sort_indices`` on them.
    """
    if invperm is None:
        invperm = inverse_permutation(perm)
    indptr, indices, data = matrix.indptr, matrix.indices, matrix.data
    counts = np.diff(indptr)
    new_counts = counts[perm]
    new_indptr = np.zeros(len(perm) + 1, dtype=indptr.dtype)
    np.cumsum(new_counts, out=new_indptr[1:])
    # Position map: entry k of the permuted storage comes from old position
    # starts[row(k)] + offset-within-row(k) — fully vectorized.
    offsets = np.arange(int(new_indptr[-1]), dtype=np.int64)
    row_starts = np.repeat(new_indptr[:-1].astype(np.int64), new_counts)
    old_starts = np.repeat(indptr[perm].astype(np.int64), new_counts)
    pos = offsets - row_starts + old_starts
    permuted = sp.csr_matrix(
        (data[pos], invperm[indices[pos]].astype(indices.dtype), new_indptr),
        shape=matrix.shape,
        copy=False,
    )
    # Storage order is original per-row order, generally unsorted in the new
    # labels; record that so nothing downstream "fixes" it silently.
    permuted.has_sorted_indices = False
    return permuted


def mean_gather_span(matrix: sp.csr_matrix) -> float:
    """nnz-weighted mean index span (max - min) of nonempty rows.

    The locality diagnostic the reordering moves: a row's span bounds the
    stretch of ``X`` its gather walks, so a smaller mean span means the
    sweep's working set packs into fewer cache lines.  Weighted by row nnz
    because a hub row's window is paid once per nonzero.
    """
    indptr, indices = matrix.indptr, matrix.indices
    counts = np.diff(indptr)
    rows = counts > 0
    if not rows.any():
        return 0.0
    starts = indptr[:-1][rows]
    lo = np.minimum.reduceat(indices, starts)
    hi = np.maximum.reduceat(indices, starts)
    return float(np.average(hi - lo, weights=counts[rows]))


class ReorderedOperator:
    """A :class:`TransitionOperator` multiplied through a gather-friendly
    symmetric permutation, bit-exact per row.

    ``matvec``/``matmat`` compute ``(A_perm @ x[perm])[invperm]`` — the
    permuted product replays each output row's original accumulation
    sequence exactly (see the module docstring), so results equal the base
    operator's bit for bit.  ``rmatvec`` delegates to the base operator
    unchanged: a column permutation re-associates its partial sums, and this
    class never trades bit-stability for locality.

    ``matmat`` dispatches through the ``threaded`` kernel's row partition
    when ``REPRO_KERNEL_THREADS`` > 1 (row splitting composes with the
    unsorted per-row storage; column-slab blocking does not), so reordering
    and row parallelism stack.
    """

    def __init__(self, base, node_types=None, perm: "np.ndarray | None" = None) -> None:
        self._base = base
        matrix = base.matrix()
        if perm is None:
            perm = gather_permutation(matrix, node_types)
        else:
            perm = np.asarray(perm, dtype=np.int64)
            if sorted(perm.tolist()) != list(range(matrix.shape[1])):
                raise ValueError("perm is not a permutation of the node ids")
        self._perm = perm
        self._invperm = inverse_permutation(perm)
        self._permuted: "dict[str, sp.csr_matrix]" = {}
        self._prepared: "dict[tuple, tuple]" = {}

    @property
    def base(self):
        return self._base

    @property
    def perm(self) -> np.ndarray:
        """New slot -> old node id (read-only view)."""
        return self._perm

    @property
    def invperm(self) -> np.ndarray:
        """Old node id -> new slot (read-only view)."""
        return self._invperm

    @property
    def shape(self) -> "tuple[int, int]":
        return self._base.shape

    @property
    def n_nodes(self) -> int:
        return self._base.n_nodes

    def permuted_matrix(self, dtype=np.float64) -> sp.csr_matrix:
        """The permuted CSR in ``dtype`` (built once per dtype, then cached).

        Shared state — callers must not mutate it or sort its indices.
        """
        dtype = np.dtype(dtype)
        found = self._permuted.get(dtype.name)
        if found is None:
            found = permuted_csr(self._base.matrix(dtype), self._perm, self._invperm)
            self._permuted[dtype.name] = found
        return found

    def gather_span_shrink(self, dtype=np.float64) -> "tuple[float, float]":
        """``(base_span, permuted_span)`` mean gather spans — the win metric."""
        return (
            mean_gather_span(self._base.matrix(dtype)),
            mean_gather_span(self.permuted_matrix(dtype)),
        )

    # ------------------------------------------------------------------ #
    # Products (bit-exact vs the base operator)
    # ------------------------------------------------------------------ #

    def _threaded_state(self, matrix: sp.csr_matrix):
        kernel = _kernels.KERNELS["threaded"]
        key = (matrix.dtype.name, kernel.state_token())
        found = self._prepared.get(key)
        if found is None:
            # Partition is n_cols-independent; single-threaded hosts get
            # state None and fall through to one sequential pass.
            found = (kernel.prepare(matrix, 1),)
            self._prepared[key] = found
        return found[0]

    def matvec(self, v: np.ndarray) -> np.ndarray:
        """``operator @ v`` through the permutation; bit-equal to base."""
        v = np.asarray(v)
        matrix = self.permuted_matrix(self._base.matrix().dtype)
        return (matrix @ v[self._perm])[self._invperm]

    def rmatvec(self, v: np.ndarray) -> np.ndarray:
        """``v @ operator`` — delegated to the base (see class docstring)."""
        return self._base.rmatvec(v)

    def matmat(self, x: np.ndarray, out: "np.ndarray | None" = None,
               accumulate: bool = False) -> np.ndarray:
        """``operator @ x`` through the permutation; bit-equal to base.

        Same contract as :meth:`TransitionOperator.matmat` (``out`` in the
        *original* node order).  The permuted product lands in a scratch
        block and is scattered back through ``invperm``.
        """
        x = np.asarray(x)
        if x.ndim != 2:
            raise ValueError(f"matmat expects a 2-D block, got shape {x.shape}")
        if accumulate and out is None:
            raise ValueError("accumulate=True requires an explicit out= buffer")
        dtype = x.dtype if x.dtype in (np.float64, np.float32) else np.dtype(np.float64)
        matrix = self.permuted_matrix(dtype)
        xp = np.ascontiguousarray(x[self._perm], dtype=dtype)
        # Accumulation starts from out's existing values *in permuted
        # order*, so each output row replays the base kernel's additions
        # from the same initial value — bit-equal even under accumulate.
        if accumulate:
            scratch = np.ascontiguousarray(out[self._perm], dtype=dtype)
        else:
            scratch = np.zeros((matrix.shape[0], x.shape[1]), dtype=dtype)
        kernel = _kernels.KERNELS["threaded"]
        if kernel.available()[0]:
            kernel.matmat(self._threaded_state(matrix), matrix, xp, scratch, True)
        else:  # pragma: no cover - scipy internals moved and no numba
            scratch += matrix @ xp
        result = scratch[self._invperm]
        if out is None:
            return result
        out[...] = result
        return out
