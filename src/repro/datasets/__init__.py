"""Datasets: the paper's toy graph plus synthetic BibNet and QLog generators.

The real DBLP/Citeseer network and MSN query log are not redistributable;
:mod:`repro.datasets.bibnet` and :mod:`repro.datasets.qlog` generate
structure-preserving synthetic substitutes (see DESIGN.md, Substitutions).
"""

from repro.datasets.bibnet import BibNet, BibNetConfig, generate_bibnet
from repro.datasets.qlog import (
    MultiTenantLog,
    QLog,
    QLogConfig,
    TenantSpec,
    generate_qlog,
    sample_multitenant_queries,
    sample_zipf_queries,
)
from repro.datasets.toy import FIG4_EXPECTED_MASS, TOY_TYPE_NAMES, toy_bibliographic_graph

__all__ = [
    "BibNet",
    "BibNetConfig",
    "generate_bibnet",
    "MultiTenantLog",
    "QLog",
    "QLogConfig",
    "TenantSpec",
    "generate_qlog",
    "sample_multitenant_queries",
    "sample_zipf_queries",
    "FIG4_EXPECTED_MASS",
    "TOY_TYPE_NAMES",
    "toy_bibliographic_graph",
]
