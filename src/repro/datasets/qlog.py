"""Synthetic query-log click graph (QLog substitute).

The paper's QLog is an MSN search-engine log turned into a bipartite graph:
search phrases and clicked URLs are nodes, an undirected edge connects a
phrase to a URL it has clicks on, and the click count is the edge weight.
The log is not redistributable, so this generator produces a
structure-preserving substitute (DESIGN.md, Substitution 2):

- latent *concepts* each emit several equivalent phrasings: identical
  non-stop-word sets, shuffled word order, optional stop words — exactly the
  equivalence the paper's Task 4 detects ("the apple ipod" vs "ipod of
  apple");
- each concept has its own relevant URLs with power-law within-concept
  relevance, plus occasional clicks on global *portal* URLs shared across
  concepts — portals supply the importance/specificity contrast (they are
  reachable from everywhere, like the broad venues of BibNet);
- concepts are grouped into *domains* of related concepts whose phrases
  occasionally click each other's URLs (a hotel-booking query clicking a
  flights page).  Cross-concept clicks make Task 4 non-trivial: sibling
  concepts become two-hop neighbors and a measure must separate genuinely
  equivalent phrasings from merely related ones;
- click counts (edge weights) multiply phrase frequency, URL relevance and
  noise;
- every node has a day timestamp for cumulative snapshots (Fig. 12–13).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.graph.builder import GraphBuilder
from repro.graph.digraph import DiGraph
from repro.utils.rng import ensure_rng

QLOG_TYPE_NAMES = ["phrase", "url"]

STOP_WORDS = frozenset({"the", "of", "for", "a", "an", "in", "on", "to", "and"})

#: Content words used to assemble concepts.  Concepts draw 2–4 words, so
#: with ~160 words distinct concepts routinely share a word — queries like
#: "apple ipod" and "apple store" overlap without being equivalent.
_CONTENT_WORDS = [
    "apple", "ipod", "google", "mail", "weather", "forecast", "hotel", "booking",
    "cheap", "flights", "pizza", "delivery", "movie", "times", "bank", "online",
    "news", "sports", "scores", "music", "download", "video", "games", "free",
    "recipes", "chicken", "cars", "used", "jobs", "search", "maps", "driving",
    "directions", "phone", "numbers", "white", "pages", "yellow", "insurance",
    "quotes", "credit", "cards", "mortgage", "rates", "stock", "market", "taxes",
    "filing", "university", "courses", "degree", "schools", "rankings", "books",
    "store", "shoes", "running", "laptop", "reviews", "camera", "digital",
    "printer", "drivers", "software", "windows", "update", "virus", "removal",
    "lyrics", "songs", "guitar", "chords", "piano", "lessons", "yoga", "poses",
    "diet", "plans", "weight", "loss", "exercise", "fitness", "doctor", "symptoms",
    "medicine", "dosage", "pharmacy", "hours", "airport", "parking", "train",
    "schedule", "bus", "routes", "ferry", "tickets", "concert", "events",
    "calendar", "holiday", "packages", "beach", "resorts", "mountain", "hiking",
    "trails", "camping", "gear", "fishing", "license", "hunting", "season",
    "garden", "plants", "flowers", "seeds", "vegetables", "growing", "kitchen",
    "cabinets", "paint", "colors", "furniture", "outlet", "dogs", "breeds",
    "puppies", "adoption", "cats", "food", "aquarium", "fish", "tanks",
    "wedding", "dresses", "invitations", "baby", "names", "toys", "education",
    "science", "museum", "exhibits", "history", "timeline", "language",
    "translation", "dictionary", "spanish", "french", "learning",
]


@dataclass(frozen=True)
class QLogConfig:
    """Knobs of the synthetic query-log graph."""

    n_concepts: int = 500
    phrases_per_concept_min: int = 2
    phrases_per_concept_max: int = 5
    words_per_concept_min: int = 2
    words_per_concept_max: int = 4
    urls_per_concept_min: int = 2
    urls_per_concept_max: int = 7
    #: global high-traffic URLs occasionally clicked from any concept.
    n_portal_urls: int = 15
    #: probability that a phrase also clicks one portal URL.
    p_portal_click: float = 0.25
    #: concepts per domain (related concepts share occasional clicks).
    concepts_per_domain: int = 5
    #: probability that a phrase also clicks one sibling-concept URL.
    p_sibling_click: float = 0.45
    #: power-law exponent of within-concept URL relevance.
    url_relevance_exponent: float = 1.3
    max_click_count: int = 40
    n_days: int = 30
    seed: int = 11

    def __post_init__(self) -> None:
        if self.n_concepts < 2:
            raise ValueError("n_concepts must be >= 2")
        if self.phrases_per_concept_min < 1 or (
            self.phrases_per_concept_max < self.phrases_per_concept_min
        ):
            raise ValueError("invalid phrases_per_concept range")
        if self.words_per_concept_min < 1 or (
            self.words_per_concept_max < self.words_per_concept_min
        ):
            raise ValueError("invalid words_per_concept range")
        if self.urls_per_concept_min < 1 or (
            self.urls_per_concept_max < self.urls_per_concept_min
        ):
            raise ValueError("invalid urls_per_concept range")
        if not 0 <= self.p_portal_click <= 1:
            raise ValueError("p_portal_click must be in [0, 1]")
        if not 0 <= self.p_sibling_click <= 1:
            raise ValueError("p_sibling_click must be in [0, 1]")
        if self.concepts_per_domain < 1:
            raise ValueError("concepts_per_domain must be >= 1")
        if self.n_days < 1:
            raise ValueError("n_days must be >= 1")


@dataclass
class QLog:
    """A generated query-log graph with concept provenance."""

    graph: DiGraph
    config: QLogConfig
    phrase_nodes: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    url_nodes: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    portal_urls: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    #: concept id of each phrase node
    phrase_concept: dict[int, int] = field(default_factory=dict)
    #: phrase nodes of each concept
    concept_phrases: dict[int, list[int]] = field(default_factory=dict)
    #: concept-relevant URLs each phrase actually clicked
    phrase_clicked_urls: dict[int, list[int]] = field(default_factory=dict)
    #: phrase text by node id (same as graph labels, without the prefix)
    phrase_text: dict[int, str] = field(default_factory=dict)
    #: domain id of each concept (concepts in a domain share stray clicks)
    concept_domain: dict[int, int] = field(default_factory=dict)
    node_timestamps: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))

    def non_stop_words(self, phrase_node: int) -> frozenset[str]:
        """The non-stop-word set of a phrase node (the Task 4 equivalence key)."""
        words = self.phrase_text[phrase_node].split()
        return frozenset(w for w in words if w not in STOP_WORDS)

    def equivalent_phrases(self, phrase_node: int) -> list[int]:
        """All *other* phrase nodes with the same non-stop-word set.

        Implements the paper's rule directly on text ("we deem two phrases
        equivalent if they contain the exact same non-stop words") rather
        than trusting generator provenance, so the returned ground truth is
        exactly what the paper's procedure would produce.
        """
        key = self.non_stop_words(phrase_node)
        return [
            p
            for p in self.phrase_nodes.tolist()
            if p != phrase_node and self.non_stop_words(p) == key
        ]


def sample_zipf_queries(
    population: "np.ndarray | list[int] | int",
    n_queries: int,
    s: float = 1.1,
    seed: "int | np.random.Generator" = 0,
) -> np.ndarray:
    """A Zipf-distributed query stream over a node population.

    Real query logs are heavily skewed: the ``r``-th most popular query
    accounts for mass proportional to ``r^-s`` (Zipf's law, ``s`` near 1 for
    web search).  This sampler drives the serving benchmarks: popularity
    ranks are assigned by a seeded shuffle of ``population`` (an array of
    node ids, or an int ``n`` meaning ``0..n-1``), then ``n_queries`` draws
    are taken i.i.d. from the rank-``-s`` power law.  The repetition this
    induces is exactly what a serving-side column cache exploits.

    Returns an ``int64`` array of node ids of length ``n_queries``.
    """
    if isinstance(population, (int, np.integer)):
        population = np.arange(int(population), dtype=np.int64)
    else:
        population = np.asarray(population, dtype=np.int64)
    if population.size == 0:
        raise ValueError("population must not be empty")
    if n_queries < 1:
        raise ValueError(f"n_queries must be >= 1, got {n_queries}")
    if s <= 0:
        raise ValueError(f"s must be > 0, got {s}")
    rng = ensure_rng(seed)
    ranked = rng.permutation(population)
    probs = np.arange(1, ranked.size + 1, dtype=np.float64) ** -float(s)
    probs /= probs.sum()
    return ranked[rng.choice(ranked.size, size=int(n_queries), p=probs)]


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of a multi-tenant query mixture.

    Parameters
    ----------
    name:
        Tenant identifier carried on every query of the stream.
    weight:
        Relative arrival share in non-burst phases (need not be normalized).
    s:
        The tenant's own Zipf skew; tenants get *independent* popularity
        permutations, so their hot heads are disjoint with high probability —
        the property that makes shared-cache contention and per-tenant
        prefetch non-trivial.
    burst_phases:
        Phase indices (see ``n_phases`` of :func:`sample_multitenant_queries`)
        during which this tenant's arrival weight is multiplied by
        ``burst_multiplier`` — modelling the bursty tenant that goes from
        trickle to flood.
    burst_multiplier:
        The weight multiplier applied in burst phases.
    """

    name: str
    weight: float = 1.0
    s: float = 1.1
    burst_phases: "tuple[int, ...]" = ()
    burst_multiplier: float = 8.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.weight <= 0:
            raise ValueError(f"tenant weight must be > 0, got {self.weight}")
        if self.s <= 0:
            raise ValueError(f"tenant s must be > 0, got {self.s}")
        if self.burst_multiplier <= 0:
            raise ValueError(
                f"burst_multiplier must be > 0, got {self.burst_multiplier}"
            )


@dataclass(frozen=True)
class MultiTenantLog:
    """A mixed multi-tenant query stream in arrival order.

    ``nodes[i]`` is the queried node of the ``i``-th arrival, issued by
    tenant ``tenants[tenant_ids[i]]`` during phase ``phases[i]``.
    """

    tenants: "tuple[str, ...]"
    tenant_ids: np.ndarray  # int64, index into ``tenants``
    nodes: np.ndarray  # int64 node ids
    phases: np.ndarray  # int64 phase index per arrival
    n_phases: int

    def __len__(self) -> int:
        return int(self.nodes.size)

    def for_tenant(self, name: str) -> np.ndarray:
        """This tenant's queried nodes, in arrival order."""
        try:
            tid = self.tenants.index(name)
        except ValueError:
            raise KeyError(f"unknown tenant {name!r}; have {self.tenants}") from None
        return self.nodes[self.tenant_ids == tid]

    def phase_slice(self, phase: int) -> "tuple[np.ndarray, np.ndarray]":
        """``(tenant_ids, nodes)`` of one phase, in arrival order."""
        mask = self.phases == phase
        return self.tenant_ids[mask], self.nodes[mask]


def sample_multitenant_queries(
    population: "np.ndarray | list[int] | int",
    n_queries: int,
    tenants: "Sequence[TenantSpec]",
    n_phases: int = 4,
    seed: "int | np.random.Generator" = 0,
) -> MultiTenantLog:
    """A seeded multi-tenant query mixture: per-tenant Zipf skew + bursts.

    The single-tenant :func:`sample_zipf_queries` models one repeated-query
    stream; a serving *gateway* faces a mixture — several tenants with their
    own hot sets and skews, arrival shares that shift when a tenant bursts,
    and phases during which a previously-quiet tenant floods in (the
    cold-tenant case background prefetch exists for).  This sampler makes
    that workload reproducible:

    - each tenant draws from its own seeded popularity permutation of
      ``population`` with its own Zipf exponent ``s`` (independent hot heads);
    - the stream is split into ``n_phases`` equal contiguous phases; within
      phase ``p`` each arrival picks its tenant from the categorical
      distribution of tenant weights, with ``burst_multiplier`` applied to
      tenants whose ``burst_phases`` contain ``p``;
    - everything derives from one :class:`numpy.random.SeedSequence`-spawned
      stream per tenant plus one for arrival mixing, so the log is
      deterministic per ``(population, n_queries, tenants, n_phases, seed)``.

    Returns a :class:`MultiTenantLog` (arrival-ordered tenant ids, node ids
    and phase indices).
    """
    if isinstance(population, (int, np.integer)):
        population = np.arange(int(population), dtype=np.int64)
    else:
        population = np.asarray(population, dtype=np.int64)
    if population.size == 0:
        raise ValueError("population must not be empty")
    if n_queries < 1:
        raise ValueError(f"n_queries must be >= 1, got {n_queries}")
    if n_phases < 1:
        raise ValueError(f"n_phases must be >= 1, got {n_phases}")
    specs = list(tenants)
    if not specs:
        raise ValueError("tenants must not be empty")
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise ValueError(f"tenant names must be unique, got {names}")
    for spec in specs:
        for p in spec.burst_phases:
            if not 0 <= p < n_phases:
                raise ValueError(
                    f"tenant {spec.name!r} bursts in phase {p}, "
                    f"but only {n_phases} phases exist"
                )

    base = ensure_rng(seed)
    # One independent child stream per tenant plus one for arrival mixing,
    # derived from the caller's seed so the whole log replays exactly.
    children = np.random.SeedSequence(
        base.integers(np.iinfo(np.int64).max)
    ).spawn(len(specs) + 1)
    mix_rng = np.random.default_rng(children[-1])

    # Per-tenant Zipf machinery: own permutation (hot head), own exponent.
    ranked: "list[np.ndarray]" = []
    probs: "list[np.ndarray]" = []
    for spec, child in zip(specs, children):
        rng = np.random.default_rng(child)
        ranked.append(rng.permutation(population))
        weights = np.arange(1, population.size + 1, dtype=np.float64) ** -float(spec.s)
        probs.append(weights / weights.sum())

    # Arrival mixing: phase-dependent categorical over tenants.
    tenant_ids = np.empty(n_queries, dtype=np.int64)
    phases = np.empty(n_queries, dtype=np.int64)
    bounds = np.linspace(0, n_queries, n_phases + 1).astype(np.int64)
    for p in range(n_phases):
        lo, hi = int(bounds[p]), int(bounds[p + 1])
        if hi <= lo:
            continue
        share = np.array(
            [
                spec.weight * (spec.burst_multiplier if p in spec.burst_phases else 1.0)
                for spec in specs
            ]
        )
        share /= share.sum()
        tenant_ids[lo:hi] = mix_rng.choice(len(specs), size=hi - lo, p=share)
        phases[lo:hi] = p

    # Per-tenant node draws from that tenant's own Zipf stream.
    nodes = np.empty(n_queries, dtype=np.int64)
    for tid, spec in enumerate(specs):
        mask = tenant_ids == tid
        count = int(mask.sum())
        if count:
            rng = np.random.default_rng(children[tid].spawn(1)[0])
            nodes[mask] = ranked[tid][rng.choice(population.size, size=count, p=probs[tid])]

    return MultiTenantLog(
        tenants=tuple(names),
        tenant_ids=tenant_ids,
        nodes=nodes,
        phases=phases,
        n_phases=int(n_phases),
    )


def generate_qlog(config: "QLogConfig | None" = None) -> QLog:
    """Generate a synthetic query-log click graph from ``config``."""
    config = config or QLogConfig()
    rng = ensure_rng(config.seed)
    stop_words = sorted(STOP_WORDS)

    # ----- concepts: distinct non-stop word sets --------------------------- #
    concept_words: list[tuple[str, ...]] = []
    used_keys: set[frozenset[str]] = set()
    attempts = 0
    while len(concept_words) < config.n_concepts:
        attempts += 1
        if attempts > config.n_concepts * 200:
            raise RuntimeError(
                "could not generate enough distinct concepts; "
                "reduce n_concepts or enlarge the vocabulary"
            )
        k = int(rng.integers(config.words_per_concept_min, config.words_per_concept_max + 1))
        words = tuple(
            sorted(rng.choice(len(_CONTENT_WORDS), size=k, replace=False).tolist())
        )
        key = frozenset(_CONTENT_WORDS[i] for i in words)
        if key in used_keys:
            continue
        used_keys.add(key)
        concept_words.append(tuple(_CONTENT_WORDS[i] for i in words))

    builder = GraphBuilder(type_names=QLOG_TYPE_NAMES)

    # ----- URLs ------------------------------------------------------------ #
    portal_urls = [
        builder.add_node(f"url:portal{i}.example.com", "url")
        for i in range(config.n_portal_urls)
    ]
    portal_pop = np.array([2.0 ** (-i * 0.4) for i in range(config.n_portal_urls)])
    portal_pop /= portal_pop.sum() if config.n_portal_urls else 1.0

    concept_urls: list[list[int]] = []
    concept_url_relevance: list[np.ndarray] = []
    for c in range(config.n_concepts):
        k = int(rng.integers(config.urls_per_concept_min, config.urls_per_concept_max + 1))
        urls = [
            builder.add_node(f"url:c{c}-{j}.example.com/page", "url") for j in range(k)
        ]
        relevance = np.arange(1, k + 1, dtype=np.float64) ** -config.url_relevance_exponent
        concept_urls.append(urls)
        concept_url_relevance.append(relevance / relevance.sum())

    # ----- phrases and clicks ---------------------------------------------- #
    phrase_nodes: list[int] = []
    phrase_concept: dict[int, int] = {}
    concept_phrases: dict[int, list[int]] = {}
    phrase_clicked_urls: dict[int, list[int]] = {}
    phrase_text: dict[int, str] = {}
    phrase_day: dict[int, int] = {}
    url_first_day: dict[int, int] = {}

    for c, words in enumerate(concept_words):
        n_phrases = int(
            rng.integers(config.phrases_per_concept_min, config.phrases_per_concept_max + 1)
        )
        concept_phrases[c] = []
        texts_used: set[str] = set()
        for j in range(n_phrases):
            # Shuffle word order; sometimes inject stop words.
            order = rng.permutation(len(words))
            tokens = [words[i] for i in order]
            if j > 0 and rng.random() < 0.6:
                n_stop = int(rng.integers(1, 3))
                for _ in range(n_stop):
                    pos = int(rng.integers(0, len(tokens) + 1))
                    tokens.insert(pos, stop_words[int(rng.integers(len(stop_words)))])
            text = " ".join(tokens)
            if text in texts_used:
                text = " ".join([stop_words[j % len(stop_words)]] + tokens)
            if text in texts_used:
                continue
            texts_used.add(text)
            pid = builder.add_node(f"phrase:{text}", "phrase")
            phrase_nodes.append(pid)
            phrase_concept[pid] = c
            concept_phrases[c].append(pid)
            phrase_text[pid] = text
            day = int(rng.integers(config.n_days))
            phrase_day[pid] = day

            # Frequent phrasing (the first) gets the most clicks.
            phrase_freq = 1.0 if j == 0 else float(rng.uniform(0.2, 0.7))
            urls = concept_urls[c]
            relevance = concept_url_relevance[c]
            n_clicked = int(rng.integers(1, len(urls) + 1))
            clicked_idx = rng.choice(len(urls), size=n_clicked, replace=False, p=relevance)
            clicked = [urls[i] for i in clicked_idx.tolist()]
            phrase_clicked_urls[pid] = clicked
            for u, rel in zip(clicked, relevance[clicked_idx].tolist()):
                count = max(1, int(round(config.max_click_count * phrase_freq * rel)))
                builder.add_edge(pid, u, weight=float(count), directed=False)
                url_first_day[u] = min(url_first_day.get(u, config.n_days - 1), day)
            if config.n_portal_urls and rng.random() < config.p_portal_click:
                portal = int(np.asarray(portal_urls)[rng.choice(len(portal_urls), p=portal_pop)])
                count = max(1, int(round(config.max_click_count * phrase_freq * 0.3)))
                builder.add_edge(pid, portal, weight=float(count), directed=False)
                url_first_day[portal] = min(
                    url_first_day.get(portal, config.n_days - 1), day
                )
            # Related-concept click: a phrase sometimes lands on a sibling
            # concept's top URL (same domain), blurring concept boundaries.
            domain_start = (c // config.concepts_per_domain) * config.concepts_per_domain
            siblings = [
                s
                for s in range(
                    domain_start,
                    min(domain_start + config.concepts_per_domain, config.n_concepts),
                )
                if s != c
            ]
            if siblings and rng.random() < config.p_sibling_click:
                sib = siblings[int(rng.integers(len(siblings)))]
                sib_url = concept_urls[sib][0]  # their most relevant URL
                count = max(1, int(round(config.max_click_count * phrase_freq * 0.25)))
                builder.add_edge(pid, sib_url, weight=float(count), directed=False)
                url_first_day[sib_url] = min(
                    url_first_day.get(sib_url, config.n_days - 1), day
                )

    graph = builder.build()

    timestamps = np.zeros(graph.n_nodes, dtype=np.int64)
    for pid, day in phrase_day.items():
        timestamps[pid] = day
    for uid in range(graph.n_nodes):
        if uid in url_first_day:
            timestamps[uid] = url_first_day[uid]
    # URLs never clicked keep timestamp 0; they are isolated, which mirrors
    # a URL appearing in the log only via its concept going live later.

    all_urls = np.asarray(
        [v for v in range(graph.n_nodes) if graph.node_types[v] == graph.type_code("url")],
        dtype=np.int64,
    )
    return QLog(
        graph=graph,
        config=config,
        phrase_nodes=np.asarray(phrase_nodes, dtype=np.int64),
        url_nodes=all_urls,
        portal_urls=np.asarray(portal_urls, dtype=np.int64),
        phrase_concept=phrase_concept,
        concept_phrases=concept_phrases,
        phrase_clicked_urls=phrase_clicked_urls,
        phrase_text=phrase_text,
        concept_domain={
            c: c // config.concepts_per_domain for c in range(config.n_concepts)
        },
        node_timestamps=timestamps,
    )
