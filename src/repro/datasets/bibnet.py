"""Synthetic bibliographic network (BibNet substitute).

The paper evaluates on a DBLP+Citeseer network of papers, authors, terms and
venues.  That data is not redistributable, so this generator produces a
structure-preserving synthetic replacement (DESIGN.md, Substitution 1):

- the same four node types and four edge types (directed paper->paper
  citations; undirected paper-term, paper-venue, paper-author);
- four research *areas* (DB/DM/IR/AI), each with topical *subtopics* whose
  names supply real multi-word term labels ("spatio temporal databases"),
  so the paper's qualitative queries (Fig. 6–7) can be posed verbatim;
- venues span the importance/specificity spectrum: each area has a few
  *broad* venues accepting papers from every subtopic (important, not
  specific — the paper's ``v1``) and one *narrow* venue per subtopic
  (specific — the paper's ``v3``);
- power-law citation in-degree via preferential attachment, power-law
  author productivity via Zipf weights;
- every node carries a year timestamp so cumulative snapshots (Fig. 12–13)
  can be taken.

Determinism: the same :class:`BibNetConfig` (including ``seed``) always
yields the identical graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.builder import GraphBuilder
from repro.graph.digraph import DiGraph
from repro.utils.rng import ensure_rng

BIBNET_TYPE_NAMES = ["paper", "author", "term", "venue"]

#: Research areas and their subtopics.  Subtopic names double as term
#: vocabulary: every word becomes a term node, so multi-word queries like
#: "spatio temporal data" address real term nodes.
AREA_SUBTOPICS: dict[str, list[str]] = {
    "DB": [
        "spatio temporal databases",
        "transaction processing",
        "query optimization",
        "stream processing",
        "information integration",
    ],
    "DM": [
        "spatio temporal mining",
        "frequent pattern mining",
        "graph clustering",
        "anomaly detection",
        "recommender systems",
    ],
    "IR": [
        "semantic web search",
        "text retrieval models",
        "web ranking",
        "question answering",
        "entity linking",
    ],
    "AI": [
        "semantic knowledge representation",
        "neural network learning",
        "planning agents",
        "probabilistic reasoning",
        "constraint satisfaction",
    ],
}

#: Generic terms shared across all areas: they appear in many papers, giving
#: broad venues their reachability advantage (the "importance" sense).
GENERIC_TERMS = [
    "data",
    "system",
    "model",
    "analysis",
    "framework",
    "approach",
    "algorithm",
    "evaluation",
    "efficient",
    "scalable",
    "optimization",
    "learning",
]


@dataclass(frozen=True)
class BibNetConfig:
    """Knobs of the synthetic bibliographic network."""

    n_papers: int = 1200
    n_authors: int = 400
    broad_venues_per_area: int = 3
    #: probability a paper is published in one of its area's broad venues
    #: (otherwise in its subtopic's narrow venue).
    p_broad_venue: float = 0.6
    terms_per_paper_min: int = 4
    terms_per_paper_max: int = 8
    authors_per_paper_min: int = 1
    authors_per_paper_max: int = 4
    max_citations_per_paper: int = 10
    #: probability a citation stays within the citing paper's subtopic
    #: (else it goes to the same area, and a small tail anywhere).
    p_cite_same_subtopic: float = 0.65
    p_cite_same_area: float = 0.25
    n_years: int = 17  # papers are spread over years 0 .. n_years-1
    #: Zipf-ish exponent for author productivity weights.
    author_productivity_exponent: float = 1.2
    #: rare-term tail (Heaps' law): expected number of tail terms per paper,
    #: and the probability that a tail-term draw coins a brand-new term
    #: instead of reusing one from the paper's subtopic.  A growing
    #: vocabulary keeps hub-term degrees sub-linear in corpus size, as in
    #: real bibliographic data.
    rare_terms_per_paper: int = 2
    p_new_rare_term: float = 0.4
    #: apply the Sarkar et al. [14] style edge-type weights (citations carry
    #: the most authority flow, term edges the least) — the paper's setting.
    use_type_weights: bool = True
    seed: int = 7

    def __post_init__(self) -> None:
        if self.n_papers < 10:
            raise ValueError("n_papers must be >= 10")
        if self.n_authors < 10:
            raise ValueError("n_authors must be >= 10")
        if not 0 <= self.p_broad_venue <= 1:
            raise ValueError("p_broad_venue must be in [0, 1]")
        if self.terms_per_paper_min < 1 or self.terms_per_paper_max < self.terms_per_paper_min:
            raise ValueError("invalid terms_per_paper range")
        if self.authors_per_paper_min < 1 or self.authors_per_paper_max < self.authors_per_paper_min:
            raise ValueError("invalid authors_per_paper range")
        if self.p_cite_same_subtopic + self.p_cite_same_area > 1:
            raise ValueError("citation locality probabilities exceed 1")
        if self.rare_terms_per_paper < 0:
            raise ValueError("rare_terms_per_paper must be >= 0")
        if not 0 <= self.p_new_rare_term <= 1:
            raise ValueError("p_new_rare_term must be in [0, 1]")
        if self.n_years < 1:
            raise ValueError("n_years must be >= 1")


@dataclass
class BibNet:
    """A generated bibliographic network with full provenance metadata."""

    graph: DiGraph
    config: BibNetConfig
    #: node ids by role
    paper_nodes: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    author_nodes: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    term_nodes: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    venue_nodes: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    #: ground-truth provenance (node-id keyed)
    paper_authors: dict[int, list[int]] = field(default_factory=dict)
    paper_venue: dict[int, int] = field(default_factory=dict)
    paper_terms: dict[int, list[int]] = field(default_factory=dict)
    paper_subtopic: dict[int, int] = field(default_factory=dict)
    venue_area: dict[int, str] = field(default_factory=dict)
    #: subtopic id of each narrow venue; broad venues map to -1
    venue_subtopic: dict[int, int] = field(default_factory=dict)
    subtopic_names: list[str] = field(default_factory=list)
    #: per-node birth year for snapshotting (length n_nodes)
    node_timestamps: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))

    def term_node_by_word(self, word: str) -> int:
        """Node id of the term ``word`` (terms are labeled ``term:<word>``)."""
        return self.graph.node_by_label(f"term:{word}")

    def term_query(self, phrase: str) -> list[int]:
        """Term-node query for a multi-word phrase, skipping unknown words."""
        nodes = []
        for word in phrase.split():
            try:
                nodes.append(self.term_node_by_word(word))
            except KeyError:
                continue
        if not nodes:
            raise KeyError(f"no query words of {phrase!r} exist as terms")
        return nodes


def generate_bibnet(config: "BibNetConfig | None" = None) -> BibNet:
    """Generate a synthetic bibliographic network from ``config``."""
    config = config or BibNetConfig()
    rng = ensure_rng(config.seed)

    areas = list(AREA_SUBTOPICS)
    subtopic_names: list[str] = []
    subtopic_area: list[str] = []
    for area in areas:
        for name in AREA_SUBTOPICS[area]:
            subtopic_names.append(name)
            subtopic_area.append(area)
    n_subtopics = len(subtopic_names)

    # ----- vocabulary ---------------------------------------------------- #
    vocabulary: list[str] = []
    seen_words: set[str] = set()
    for name in subtopic_names:
        for word in name.split():
            if word not in seen_words:
                seen_words.add(word)
                vocabulary.append(word)
    for word in GENERIC_TERMS:
        if word not in seen_words:
            seen_words.add(word)
            vocabulary.append(word)

    builder = GraphBuilder(type_names=BIBNET_TYPE_NAMES)
    term_ids: dict[str, int] = {}
    for word in vocabulary:
        term_ids[word] = builder.add_node(f"term:{word}", "term")

    # Per-subtopic term distribution: name words dominate, then area words,
    # then generic filler.
    subtopic_term_pools: list[tuple[list[int], np.ndarray]] = []
    for s, name in enumerate(subtopic_names):
        own_words = name.split()
        area_words = [
            w
            for other in AREA_SUBTOPICS[subtopic_area[s]]
            for w in other.split()
            if w not in own_words
        ]
        pool: list[int] = []
        weights: list[float] = []
        for w in own_words:
            pool.append(term_ids[w])
            weights.append(8.0)
        for w in dict.fromkeys(area_words):
            pool.append(term_ids[w])
            weights.append(1.0)
        for w in GENERIC_TERMS:
            if term_ids[w] not in pool:
                pool.append(term_ids[w])
                weights.append(2.5)
        wgt = np.asarray(weights)
        subtopic_term_pools.append((pool, wgt / wgt.sum()))

    # ----- venues --------------------------------------------------------- #
    broad_venues: dict[str, list[int]] = {}
    broad_prestige: dict[str, np.ndarray] = {}
    narrow_venue: list[int] = []
    venue_area: dict[int, str] = {}
    venue_subtopic: dict[int, int] = {}
    for area in areas:
        ids = []
        for i in range(config.broad_venues_per_area):
            vid = builder.add_node(f"venue:{area}_Major_{i}", "venue")
            ids.append(vid)
            venue_area[vid] = area
            venue_subtopic[vid] = -1
        broad_venues[area] = ids
        # First broad venue of each area is the most prestigious.
        prestige = np.array([2.0 ** (-i) for i in range(len(ids))])
        broad_prestige[area] = prestige / prestige.sum()
    for s, name in enumerate(subtopic_names):
        label = "venue:Wkshp_" + "_".join(name.split())
        vid = builder.add_node(label, "venue")
        narrow_venue.append(vid)
        venue_area[vid] = subtopic_area[s]
        venue_subtopic[vid] = s

    # ----- authors --------------------------------------------------------- #
    author_nodes: list[int] = []
    author_subtopics: list[list[int]] = []
    subtopic_authors: list[list[int]] = [[] for _ in range(n_subtopics)]
    subtopic_author_weights: list[list[float]] = [[] for _ in range(n_subtopics)]
    for a in range(config.n_authors):
        aid = builder.add_node(f"author:a{a}", "author")
        author_nodes.append(aid)
        primary = int(rng.integers(n_subtopics))
        interests = [primary]
        if rng.random() < 0.3:
            secondary = int(rng.integers(n_subtopics))
            if secondary != primary:
                interests.append(secondary)
        author_subtopics.append(interests)
        productivity = float((a % 97 + 1.0) ** -config.author_productivity_exponent)
        # A deterministic Zipf-like weight; the modulus decouples productivity
        # from subtopic id so every subtopic gets both heavy and light authors.
        for s in interests:
            subtopic_authors[s].append(aid)
            subtopic_author_weights[s].append(productivity)
    for s in range(n_subtopics):
        if not subtopic_authors[s]:
            # Guarantee every subtopic has at least one author.
            aid = author_nodes[int(rng.integers(len(author_nodes)))]
            subtopic_authors[s].append(aid)
            subtopic_author_weights[s].append(1.0)

    # ----- papers --------------------------------------------------------- #
    paper_nodes: list[int] = []
    paper_authors: dict[int, list[int]] = {}
    paper_venue: dict[int, int] = {}
    paper_terms: dict[int, list[int]] = {}
    paper_subtopic: dict[int, int] = {}
    paper_year: dict[int, int] = {}
    papers_by_subtopic: list[list[int]] = [[] for _ in range(n_subtopics)]
    papers_by_area: dict[str, list[int]] = {area: [] for area in areas}
    citation_counts: dict[int, int] = {}

    subtopic_popularity = rng.dirichlet(np.full(n_subtopics, 3.0))
    rare_pool: list[list[int]] = [[] for _ in range(n_subtopics)]
    rare_uses: dict[int, int] = {}

    for i in range(config.n_papers):
        pid = builder.add_node(f"paper:p{i}", "paper")
        paper_nodes.append(pid)
        year = i * config.n_years // config.n_papers
        paper_year[pid] = year
        s = int(rng.choice(n_subtopics, p=subtopic_popularity))
        area = subtopic_area[s]
        paper_subtopic[pid] = s

        # Authors: weighted draw without replacement from the subtopic pool.
        pool = subtopic_authors[s]
        pool_w = np.asarray(subtopic_author_weights[s])
        k_auth = int(
            rng.integers(config.authors_per_paper_min, config.authors_per_paper_max + 1)
        )
        k_auth = min(k_auth, len(pool))
        chosen = rng.choice(
            len(pool), size=k_auth, replace=False, p=pool_w / pool_w.sum()
        )
        authors = [pool[j] for j in chosen.tolist()]
        paper_authors[pid] = authors
        for aid in authors:
            builder.add_edge(pid, aid, directed=False)

        # Venue: broad (area-wide) with p_broad_venue, else the subtopic's
        # narrow venue.
        if rng.random() < config.p_broad_venue:
            venue = int(
                rng.choice(broad_venues[area], p=broad_prestige[area])
            )
        else:
            venue = narrow_venue[s]
        paper_venue[pid] = venue
        builder.add_edge(pid, venue, directed=False)

        # Terms from the subtopic distribution, without replacement.
        pool_terms, pool_probs = subtopic_term_pools[s]
        k_terms = int(rng.integers(config.terms_per_paper_min, config.terms_per_paper_max + 1))
        k_terms = min(k_terms, len(pool_terms))
        term_sel = rng.choice(len(pool_terms), size=k_terms, replace=False, p=pool_probs)
        terms = [pool_terms[j] for j in term_sel.tolist()]

        # Rare tail terms (Heaps' law): the vocabulary keeps growing with
        # the corpus, so hub-term degrees stay sub-linear in corpus size.
        for _ in range(config.rare_terms_per_paper):
            pool = rare_pool[s]
            if not pool or rng.random() < config.p_new_rare_term:
                term = builder.add_node(
                    f"term:rare_{s}_{len(pool)}", "term"
                )
                pool.append(term)
                rare_uses[term] = 0
            else:
                weights = np.asarray([1.0 + rare_uses[t] for t in pool])
                term = pool[int(rng.choice(len(pool), p=weights / weights.sum()))]
            if term not in terms:
                terms.append(term)
                rare_uses[term] = rare_uses.get(term, 0) + 1

        paper_terms[pid] = terms
        for t in terms:
            builder.add_edge(pid, t, directed=False)

        # Citations to earlier papers: subtopic-local with preferential
        # attachment on current citation counts.
        n_cites = int(rng.integers(0, config.max_citations_per_paper + 1))
        cited: set[int] = set()
        for _ in range(n_cites):
            u = rng.random()
            if u < config.p_cite_same_subtopic:
                candidates = papers_by_subtopic[s]
            elif u < config.p_cite_same_subtopic + config.p_cite_same_area:
                candidates = papers_by_area[area]
            else:
                candidates = paper_nodes[:-1]
            if not candidates:
                continue
            weights = np.asarray(
                [1.0 + citation_counts.get(c, 0) for c in candidates], dtype=np.float64
            )
            target = int(
                np.asarray(candidates)[rng.choice(len(candidates), p=weights / weights.sum())]
            )
            if target != pid and target not in cited:
                cited.add(target)
                builder.add_edge(pid, target, directed=True)
                citation_counts[target] = citation_counts.get(target, 0) + 1

        papers_by_subtopic[s].append(pid)
        papers_by_area[area].append(pid)

    graph = builder.build()
    if config.use_type_weights:
        from repro.graph.hetero import DEFAULT_BIBNET_TYPE_WEIGHTS, apply_type_weights

        graph = apply_type_weights(graph, DEFAULT_BIBNET_TYPE_WEIGHTS)

    # ----- per-node timestamps (birth year) -------------------------------- #
    timestamps = np.zeros(graph.n_nodes, dtype=np.int64)
    for pid, year in paper_year.items():
        timestamps[pid] = year
    # Non-paper nodes are born with their first incident paper.
    first_seen = np.full(graph.n_nodes, config.n_years - 1, dtype=np.int64)
    for pid in paper_nodes:
        year = paper_year[pid]
        for nb in (
            paper_authors[pid]
            + paper_terms[pid]
            + [paper_venue[pid]]
        ):
            if year < first_seen[nb]:
                first_seen[nb] = year
    node_types = graph.node_types
    assert node_types is not None
    paper_code = graph.type_code("paper")
    for v in range(graph.n_nodes):
        timestamps[v] = paper_year.get(v, first_seen[v]) if node_types[v] == paper_code else first_seen[v]

    return BibNet(
        graph=graph,
        config=config,
        paper_nodes=np.asarray(paper_nodes, dtype=np.int64),
        author_nodes=np.asarray(author_nodes, dtype=np.int64),
        term_nodes=np.asarray(
            sorted(list(term_ids.values()) + [t for pool in rare_pool for t in pool]),
            dtype=np.int64,
        ),
        venue_nodes=np.asarray(sorted(venue_area), dtype=np.int64),
        paper_authors=paper_authors,
        paper_venue=paper_venue,
        paper_terms=paper_terms,
        paper_subtopic=paper_subtopic,
        venue_area=venue_area,
        venue_subtopic=venue_subtopic,
        subtopic_names=subtopic_names,
        node_timestamps=timestamps,
    )
