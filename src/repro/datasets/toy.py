"""The paper's running toy example (Fig. 2).

A tiny bibliographic network with two terms, seven papers and three venues:

- ``t1`` ("spatio") tags papers ``p1..p5``; ``t2`` ("transaction") tags the
  off-topic papers ``p6, p7``;
- venue ``v1`` accepts ``p1, p2, p6, p7`` (important but unspecific),
- venue ``v2`` accepts ``p3, p4`` (important *and* specific),
- venue ``v3`` accepts ``p5`` (specific but less important).

All edges are undirected with equal weight, matching the paper's setup.  The
Fig. 4 table follows: with constant walk lengths ``L = L' = 2`` and query
``t1``, the unnormalized round-trip masses are ``v1: 0.05``, ``v2: 0.1``,
``v3: 0.05``, ``t1: 0.25``.
"""

from __future__ import annotations

from repro.graph.builder import GraphBuilder
from repro.graph.digraph import DiGraph

TOY_TYPE_NAMES = ["term", "paper", "venue"]


def toy_bibliographic_graph() -> DiGraph:
    """Build the Fig. 2 toy graph (12 nodes, 13 undirected edges)."""
    b = GraphBuilder(type_names=TOY_TYPE_NAMES)
    t1 = b.add_node("t1", "term")
    t2 = b.add_node("t2", "term")
    papers = [b.add_node(f"p{i}", "paper") for i in range(1, 8)]
    v1 = b.add_node("v1", "venue")
    v2 = b.add_node("v2", "venue")
    v3 = b.add_node("v3", "venue")

    # Terms tag papers: t1 covers p1..p5, t2 covers the off-topic p6, p7.
    for p in papers[:5]:
        b.add_edge(t1, p, directed=False)
    for p in papers[5:]:
        b.add_edge(t2, p, directed=False)

    # Venues accept papers.
    for p in (papers[0], papers[1], papers[5], papers[6]):
        b.add_edge(v1, p, directed=False)
    for p in (papers[2], papers[3]):
        b.add_edge(v2, p, directed=False)
    b.add_edge(v3, papers[4], directed=False)

    return b.build()


#: The paper's Fig. 4 expected unnormalized round-trip probability mass per
#: target for query t1 with constant L = L' = 2 (labels -> mass).
FIG4_EXPECTED_MASS = {
    "v1": 0.05,
    "v2": 0.10,
    "v3": 0.05,
    "t1": 0.25,
}
