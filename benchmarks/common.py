"""Shared infrastructure for the per-figure benchmarks.

Every bench regenerates one table or figure of the paper; the rendered
table is written to ``benchmarks/results/<name>.txt`` *and* printed, so it
survives pytest's output capture.  Scale is controlled by the
``REPRO_BENCH_SCALE`` environment variable:

- ``small`` (default): minutes-scale run on a laptop;
- ``paper``: larger graphs and more queries (tens of minutes), closer to
  the paper's statistical power.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


@dataclass(frozen=True)
class BenchScale:
    """All size knobs of the benchmark suite in one place."""

    name: str
    # effectiveness (Fig. 5, 8, 9, 10)
    eval_papers: int
    eval_authors: int
    eval_concepts: int
    test_queries: int
    dev_queries: int
    # efficiency (Fig. 11)
    full_papers: int
    full_authors: int
    efficiency_queries: int
    # scalability (Fig. 12-13)
    snapshot_papers: int
    snapshot_authors: int
    snapshot_queries: int


SCALES = {
    "small": BenchScale(
        name="small",
        eval_papers=1400,
        eval_authors=500,
        eval_concepts=350,
        test_queries=40,
        dev_queries=30,
        full_papers=14000,
        full_authors=4500,
        efficiency_queries=10,
        snapshot_papers=12000,
        snapshot_authors=3800,
        snapshot_queries=25,
    ),
    "paper": BenchScale(
        name="paper",
        eval_papers=4000,
        eval_authors=1400,
        eval_concepts=900,
        test_queries=150,
        dev_queries=100,
        full_papers=24000,
        full_authors=7500,
        efficiency_queries=40,
        snapshot_papers=30000,
        snapshot_authors=9500,
        snapshot_queries=80,
    ),
}


def bench_scale() -> BenchScale:
    """The active scale, selected by ``REPRO_BENCH_SCALE``."""
    name = os.environ.get("REPRO_BENCH_SCALE", "small")
    if name not in SCALES:
        raise ValueError(
            f"REPRO_BENCH_SCALE must be one of {sorted(SCALES)}, got {name!r}"
        )
    return SCALES[name]


def report(name: str, text: str) -> None:
    """Persist a rendered table under benchmarks/results/ and print it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n[{name}] -> {path}")
    print(text)


def report_json(name: str, payload: dict) -> None:
    """Persist machine-readable metrics as ``benchmarks/results/<name>.json``.

    CI's benchmark-smoke job merges these into ``ci_smoke.json`` (see
    ``benchmarks/ci_smoke.py``), so the perf trajectory is tracked
    per-commit as a workflow artifact.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[{name}] metrics -> {path}")
