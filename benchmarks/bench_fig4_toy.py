"""Fig. 4: the toy-graph round-trip table, regenerated exactly.

The paper lists every round trip from t1 with constant L = L' = 2 and the
resulting (unnormalized) RoundTripRank masses: v1 0.05, v2 0.10, v3 0.05,
t1 0.25.  This bench regenerates the table by brute-force enumeration and
checks the decomposition of Prop. 2 reproduces it.
"""

from benchmarks.common import report
from repro.core import (
    enumerate_round_trips,
    roundtriprank_constant_length,
)
from repro.datasets import FIG4_EXPECTED_MASS, toy_bibliographic_graph


def run_fig4() -> str:
    graph = toy_bibliographic_graph()
    q = graph.node_by_label("t1")
    trips = enumerate_round_trips(graph, q, 2, 2)
    product = roundtriprank_constant_length(graph, q, 2, 2, normalize=False)

    lines = ["Fig. 4 — round trips from t1 (constant L = L' = 2)", ""]
    lines.append(f"{'target':8s} {'#trips':>7s} {'prob each':>10s} {'mass':>8s} {'paper':>8s}")
    for label in ("v1", "v2", "v3", "t1"):
        node = graph.node_by_label(label)
        per_trip = trips[node][0][1]
        mass = sum(p for _, p in trips[node])
        expected = FIG4_EXPECTED_MASS[label]
        assert abs(mass - expected) < 1e-12, (label, mass, expected)
        assert abs(product[node] - expected) < 1e-12
        lines.append(
            f"{label:8s} {len(trips[node]):7d} {per_trip:10.4f} {mass:8.4f} {expected:8.4f}"
        )
    others = [
        v
        for v in range(graph.n_nodes)
        if graph.label_of(v) not in FIG4_EXPECTED_MASS and product[v] > 0
    ]
    assert not others
    lines.append("")
    lines.append("all other targets: 0 round trips (as in the paper)")
    lines.append("Prop. 2 product form reproduces the enumeration exactly.")
    return "\n".join(lines)


def test_fig4_toy_table(benchmark):
    text = benchmark.pedantic(run_fig4, rounds=3, iterations=1)
    report("fig4_toy", text)
