"""CI perf-regression gate over the ``ci_smoke.json`` metrics.

Compares the freshly-generated ``benchmarks/results/ci_smoke.json`` against
the committed baseline ``benchmarks/results/ci_smoke_baseline.json`` and
exits non-zero when any gated metric leaves its tolerance band — turning a
perf or quality regression into a red CI job instead of a silently drifting
artifact.

Three kinds of band, chosen per metric:

- ``equal``  — deterministic metrics (replay hit rates, certified/escalated
  counts, shed rate): the value must stay within ``atol + rtol * |base|``
  of the baseline in *both* directions, so an unexplained improvement is as
  loud as a regression (it usually means the workload changed and the
  baseline is stale);
- ``min``    — bigger-is-better metrics (speedups): the value must not drop
  below ``base * (1 - tol) - atol``.  Wall-clock speedups get wide bands —
  CI machines are noisy — while the band still catches a halving;
- ``max``    — smaller-is-better metrics (parity residuals): the value must
  not rise above ``base * (1 + tol) + atol``.

Raw millisecond timings are deliberately *report-only* (printed, never
gated): they scale with the machine, so gating them would flake on every
runner change.  Ratios and counts are machine-portable.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py
    PYTHONPATH=src python benchmarks/check_regression.py --update-baseline

``--update-baseline`` rewrites the baseline from the current metrics; the
diff of the committed baseline is then the reviewable record of an accepted
perf change.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"
CURRENT_PATH = RESULTS_DIR / "ci_smoke.json"
BASELINE_PATH = RESULTS_DIR / "ci_smoke_baseline.json"


@dataclass(frozen=True)
class Check:
    """One gated metric: a dotted path into the payload plus its band."""

    path: str
    mode: str  # "equal" | "min" | "max"
    tol: float = 0.0  # relative band (min/max) or rtol (equal)
    atol: float = 0.0
    gate: bool = True  # report-only when False


CHECKS = (
    # Exactness/parity residuals: these are the project's correctness
    # trajectory; any growth beyond noise is a red flag.
    Check("batch_engine.column_parity_max_abs", "max", atol=1e-9),
    Check("parallel.auto_parity_max_abs", "max", atol=1e-9),
    Check("serving.topk_parity", "equal"),
    # The threaded kernel and the row-sharded single query are bit-exact by
    # construction; these booleans asserted in-bench must stay 1.
    Check("threaded.kernel_bit_exact", "equal"),
    Check("threaded.singlequery_bit_exact", "equal"),
    # Deterministic replay metrics: equality bands (stale baselines and
    # workload drift fail loudly in either direction).
    Check("serving.cache_hit_rate", "equal", atol=0.02),
    Check("gateway.lru_hit_rate", "equal", atol=0.02),
    Check("gateway.gdsf_hit_rate", "equal", atol=0.02),
    Check("gateway.shed_rate", "equal", atol=0.02),
    Check("gateway.max_queue_depth", "equal"),
    # The local fast path's certification outcomes are deterministic for a
    # fixed benchmark config (the push budget counts work units, not wall
    # time); an escalation-rate regression turns CI red here.
    Check("gateway.n_local_certified", "equal", atol=2),
    Check("gateway.n_local_escalated", "equal", atol=2),
    # Observability: the bench's replay counters are deterministic (fixed
    # stream, fresh gateway per replay) — drift means serving behavior
    # changed, not the clock.  The overhead percentages ride report-only:
    # the disabled bound is asserted in-bench, and the enabled delta is
    # walltime-noisy on shared runners.
    Check("obs.cache_hits", "equal"),
    Check("obs.n_local_certified", "equal", atol=2),
    Check("obs.disabled_overhead_pct", "max", gate=False),
    Check("obs.enabled_overhead_pct", "max", gate=False),
    Check("gateway.cold_tenant_first_touch_prefetch", "min", tol=0.3),
    # Wall-clock ratios: wide bands (CI noise), still catch a collapse.
    Check("batch_engine.batch_speedup", "min", tol=0.5),
    Check("batch_engine.walk_speedup", "min", tol=0.5),
    Check("serving.median_speedup", "min", tol=0.5),
    Check("serving.microbatch_speedup", "min", tol=0.5),
    Check("gateway.miss_p99_speedup", "min", tol=0.5),
    # Raw timings: machine-scaled, report-only.  The single-query row-shard
    # speedup rides here too: on a one-core CI runner the shards time-slice
    # one CPU, so gating it would institutionalize a flake.
    Check("threaded.singlequery_speedup", "min", gate=False),
    Check("serving.warm_median_ms", "max", gate=False),
    Check("serving.cold_median_ms", "max", gate=False),
    Check("gateway.lane_p99_ms", "max", gate=False),
    Check("gateway.miss_p99_ms_batcher", "max", gate=False),
    Check("gateway.miss_p99_ms_local", "max", gate=False),
)


def resolve(payload: dict, path: str):
    """Follow a dotted path; ``KeyError`` names the missing segment."""
    value = payload
    for part in path.split("."):
        if not isinstance(value, dict) or part not in value:
            raise KeyError(path)
        value = value[part]
    return value


def _violation(check: Check, base: float, cur: float) -> "str | None":
    """The failure description, or ``None`` when the value is in band."""
    base = float(base)
    cur = float(cur)
    if check.mode == "equal":
        band = check.atol + check.tol * abs(base)
        if abs(cur - base) > band:
            return f"|{cur:.6g} - {base:.6g}| > {band:.6g}"
    elif check.mode == "min":
        floor = base * (1.0 - check.tol) - check.atol
        if cur < floor:
            return f"{cur:.6g} < floor {floor:.6g} (baseline {base:.6g})"
    elif check.mode == "max":
        ceil = base * (1.0 + check.tol) + check.atol
        if cur > ceil:
            return f"{cur:.6g} > ceiling {ceil:.6g} (baseline {base:.6g})"
    else:  # pragma: no cover - spec bug
        raise ValueError(f"unknown mode {check.mode!r} for {check.path}")
    return None


def compare(baseline: dict, current: dict) -> "tuple[list[str], list[str]]":
    """``(failures, report_lines)`` for the current payload vs the baseline."""
    failures: "list[str]" = []
    lines: "list[str]" = []
    recorded = baseline.get("metrics", {})
    for check in CHECKS:
        try:
            cur = resolve(current, check.path)
        except KeyError:
            failures.append(f"{check.path}: missing from current metrics")
            continue
        if check.path not in recorded:
            if check.gate:
                failures.append(
                    f"{check.path}: not in baseline — run --update-baseline"
                )
            continue
        base = recorded[check.path]
        why = _violation(check, base, cur)
        tag = "GATE" if check.gate else "info"
        status = "ok" if why is None else "FAIL"
        lines.append(
            f"  [{tag}] {check.path}: {float(cur):.6g} "
            f"(baseline {float(base):.6g}) {status if check.gate else ''}".rstrip()
        )
        if why is not None and check.gate:
            failures.append(f"{check.path}: {why}")
    return failures, lines


def build_baseline(current: dict) -> dict:
    """A fresh baseline payload distilled from the current metrics."""
    metrics = {}
    for check in CHECKS:
        try:
            metrics[check.path] = resolve(current, check.path)
        except KeyError:
            pass  # a bench that did not run leaves no baseline entry
    return {
        "schema": 1,
        "source": CURRENT_PATH.name,
        "note": (
            "Committed perf baseline for benchmarks/check_regression.py; "
            "regenerate with --update-baseline and commit the diff."
        ),
        "metrics": metrics,
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", type=Path, default=CURRENT_PATH)
    parser.add_argument("--baseline", type=Path, default=BASELINE_PATH)
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current metrics and exit 0",
    )
    args = parser.parse_args(argv)

    if not args.current.exists():
        print(f"[check_regression] no current metrics at {args.current}", file=sys.stderr)
        return 2
    current = json.loads(args.current.read_text())

    if args.update_baseline:
        payload = build_baseline(current)
        args.baseline.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"[check_regression] baseline updated -> {args.baseline}")
        return 0

    if not args.baseline.exists():
        print(f"[check_regression] no baseline at {args.baseline}", file=sys.stderr)
        return 2
    baseline = json.loads(args.baseline.read_text())

    failures, lines = compare(baseline, current)
    print(f"[check_regression] {args.current} vs {args.baseline}")
    print("\n".join(lines))
    if failures:
        print(f"\n[check_regression] {len(failures)} regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\n[check_regression] all {sum(c.gate for c in CHECKS)} gated metrics in band")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
