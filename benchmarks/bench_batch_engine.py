"""Batch engine throughput: sequential single-query paths vs the engine.

Three comparisons:

(a) F-Rank queries/sec — ``q`` sequential ``frank_vector`` solves against a
    single ``frank_batch`` call with ``q`` columns (one multi-column sparse
    power iteration); columns are checked to match the single-query results
    to 1e-10 so the speedup is never bought with accuracy.
(b) Monte Carlo walks/sec — the loop path (one ``rng.choice`` per step, as
    ``walk_steps`` does) against the vectorized :class:`WalkEngine`; both
    estimate the same F-Rank distribution with equal sample counts and the
    max-abs errors are reported side by side.
(c) Kernel sweep — one ``operator @ X`` sweep per registered
    :mod:`repro.ops` matmat kernel at several column widths, bit-equality
    asserted against the scipy baseline; machine-readable timings go to
    ``benchmarks/results/kernels.json``.  The sweep runs on a graph large
    enough that ``X`` overflows L2 (where the ROADMAP's "gather-bound"
    ceiling actually bites).

``REPRO_BENCH_BATCH_SMOKE=1`` switches to the Fig. 2 toy graph / a small
BibNet with small counts (the CI smoke configuration); the default is the
effectiveness-scale synthetic BibNet (and, for the kernel sweep, the
efficiency-scale one).
"""

from __future__ import annotations

import os

import numpy as np

from benchmarks.common import report, report_json
from repro.core.frank import frank_vector
from repro.core.montecarlo import sample_geometric_length, walk_steps
from repro.datasets import BibNetConfig, generate_bibnet, toy_bibliographic_graph
from repro.engine import WalkEngine, frank_batch
from repro.ops import available_kernels, capabilities, get_operator
from repro.utils.rng import ensure_rng
from repro.utils.timer import Timer


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_BATCH_SMOKE", "") == "1"


def _setup():
    """(graph, n_queries, n_loop_walks, n_vec_walks) for the active mode."""
    if _smoke():
        return toy_bibliographic_graph(), 8, 2000, 20000
    graph = generate_bibnet(BibNetConfig(n_papers=1400, n_authors=500, seed=13)).graph
    return graph, 64, 3000, 300000


def run_batch_engine(graph, n_queries, n_loop_walks, n_vec_walks) -> "tuple[str, dict]":
    rng = np.random.default_rng(17)
    queries = [int(q) for q in rng.choice(graph.n_nodes, size=n_queries, replace=False)]
    lines = [
        "Batch engine throughput (single-query loop vs batched/vectorized)",
        f"graph: {graph.n_nodes} nodes / {graph.n_edges} arcs; "
        f"{n_queries}-query batch; mode: {'smoke' if _smoke() else 'full'}",
        "",
        "(a) F-Rank: sequential frank_vector vs one frank_batch",
    ]

    # Warm both paths once (page-faults, operator caches) so the timed lap
    # measures steady-state serving throughput.
    frank_vector(graph, queries[0])
    frank_batch(graph, queries[: min(4, n_queries)])

    with Timer() as t_seq:
        singles = [frank_vector(graph, q) for q in queries]
    with Timer() as t_batch:
        batched = frank_batch(graph, queries)
    parity = max(
        float(np.abs(batched[:, j] - single).max()) for j, single in enumerate(singles)
    )
    assert parity < 1e-10, f"batch/single divergence {parity:.3e}"
    seq_qps = n_queries / (t_seq.elapsed_ms / 1000.0)
    batch_qps = n_queries / (t_batch.elapsed_ms / 1000.0)
    batch_speedup = batch_qps / seq_qps
    lines.append(f"  sequential: {t_seq.elapsed_ms:9.1f} ms  ({seq_qps:9.1f} queries/s)")
    lines.append(f"  batched:    {t_batch.elapsed_ms:9.1f} ms  ({batch_qps:9.1f} queries/s)")
    lines.append(f"  speedup:    {batch_speedup:9.2f}x   (column parity {parity:.1e})")

    lines.append("")
    lines.append("(b) Monte Carlo sampling: loop walk_steps vs WalkEngine")
    alpha = 0.25
    query = queries[0]
    exact = frank_vector(graph, query, alpha)

    loop_rng = ensure_rng(101)
    loop_counts = np.zeros(graph.n_nodes)
    with Timer() as t_loop:
        for _ in range(n_loop_walks):
            length = sample_geometric_length(alpha, loop_rng)
            loop_counts[walk_steps(graph, query, length, loop_rng)[-1]] += 1
    loop_err = float(np.abs(loop_counts / n_loop_walks - exact).max())
    loop_wps = n_loop_walks / (t_loop.elapsed_ms / 1000.0)

    engine = WalkEngine(graph)
    vec_rng = ensure_rng(102)
    with Timer() as t_vec:
        terminals = engine.sample_trip_terminals(query, alpha, n_vec_walks, vec_rng)
    vec_wps = n_vec_walks / (t_vec.elapsed_ms / 1000.0)
    # Accuracy at equal sample counts: reuse the first n_loop_walks walks.
    vec_err = float(
        np.abs(
            np.bincount(terminals[:n_loop_walks], minlength=graph.n_nodes)
            / n_loop_walks
            - exact
        ).max()
    )
    walk_speedup = vec_wps / loop_wps
    lines.append(
        f"  loop:       {n_loop_walks:8d} walks in {t_loop.elapsed_ms:9.1f} ms  "
        f"({loop_wps:11.0f} walks/s, max err {loop_err:.4f})"
    )
    lines.append(
        f"  vectorized: {n_vec_walks:8d} walks in {t_vec.elapsed_ms:9.1f} ms  "
        f"({vec_wps:11.0f} walks/s, max err {vec_err:.4f} at {n_loop_walks} walks)"
    )
    lines.append(f"  speedup:    {walk_speedup:9.2f}x")

    if not _smoke():
        assert batch_speedup >= 5.0, f"batch speedup {batch_speedup:.2f}x < 5x"
        assert walk_speedup >= 10.0, f"walk speedup {walk_speedup:.2f}x < 10x"
        lines.append("")
        lines.append("acceptance: batch >= 5x and walks >= 10x — both hold")
    metrics = {
        "mode": "smoke" if _smoke() else "full",
        "n_nodes": graph.n_nodes,
        "n_edges": graph.n_edges,
        "n_queries": n_queries,
        "sequential_ms": t_seq.elapsed_ms,
        "batched_ms": t_batch.elapsed_ms,
        "batch_speedup": batch_speedup,
        "column_parity_max_abs": parity,
        "loop_walks_per_s": loop_wps,
        "vectorized_walks_per_s": vec_wps,
        "walk_speedup": walk_speedup,
    }
    return "\n".join(lines), metrics


def test_bench_batch_engine(benchmark):
    graph, n_queries, n_loop_walks, n_vec_walks = _setup()
    text, metrics = benchmark.pedantic(
        run_batch_engine,
        args=(graph, n_queries, n_loop_walks, n_vec_walks),
        rounds=1,
        iterations=1,
    )
    report("batch_engine", text)
    report_json("batch_engine", metrics)


def _kernel_setup():
    """(graph, widths, repeats) for the kernel-comparison sweep."""
    if _smoke():
        graph = generate_bibnet(BibNetConfig(n_papers=300, n_authors=120, seed=13)).graph
        return graph, (8, 32), 3
    # Efficiency-scale BibNet (the fig. 11 size): X at 64 columns is ~15 MB
    # here, far past L2, which is where scipy's matmat goes gather-bound.
    graph = generate_bibnet(BibNetConfig(n_papers=14000, n_authors=4500, seed=13)).graph
    return graph, (16, 64), 20


def run_kernel_sweep(graph, widths, repeats) -> "tuple[str, dict]":
    """Time one ``operator @ X`` sweep per registered matmat kernel.

    Times the overwrite form into a preallocated output (the shape of every
    solver sweep) after one warm pass per kernel (which also builds the
    blocked kernel's slab preparation — cached on the operator, exactly as
    in steady-state serving).  Bit-equality against the scipy baseline is
    asserted before any number is reported.
    """
    top = get_operator(graph, transpose=True)
    usable = [name for name, reason in available_kernels().items() if reason is None]
    caps = capabilities()
    rng = np.random.default_rng(29)
    lines = [
        "Sparse matmat kernels (one operator @ X sweep, F-orientation)",
        f"graph: {graph.n_nodes} nodes / {graph.n_edges} arcs; "
        f"kernels: {', '.join(usable)}; L2 target {caps['l2_bytes'] >> 10} KiB; "
        f"mode: {'smoke' if _smoke() else 'full'}",
        "",
        f"{'width':>6s}" + "".join(f"  {name:>12s}" for name in usable) + "  speedup(blocked)",
    ]
    per_width: "dict[str, dict]" = {}
    for q in widths:
        x = rng.random((graph.n_nodes, q))
        out = np.empty_like(x)
        timings: "dict[str, float]" = {}
        reference = None
        for name in usable:
            top.matmat(x, out=out, kernel=name)  # warm: page-faults + slab prep
            # Min over laps of 3 sweeps: robust against scheduler noise on
            # shared CI runners (the mean is dominated by interruptions).
            laps = []
            for _ in range(repeats):
                with Timer() as t:
                    for _ in range(3):
                        top.matmat(x, out=out, kernel=name)
                laps.append(t.elapsed_ms / 3)
            timings[name] = min(laps)
            if name == "scipy":
                reference = out.copy()
            else:
                assert np.array_equal(out, reference), f"kernel {name} diverged at q={q}"
        blocked_speedup = (
            timings["scipy"] / timings["blocked"] if "blocked" in timings else None
        )
        per_width[str(q)] = {
            "per_sweep_ms": timings,
            "speedup_blocked_vs_scipy": blocked_speedup,
        }
        lines.append(
            f"{q:6d}"
            + "".join(f"  {timings[name]:9.2f} ms" for name in usable)
            + (f"  {blocked_speedup:8.2f}x" if blocked_speedup is not None else "       n/a")
        )
    lines.append("")
    lines.append(
        "bit-exactness: every kernel's output compared equal to the scipy "
        "baseline before timing was reported"
    )
    metrics = {
        "mode": "smoke" if _smoke() else "full",
        "n_nodes": graph.n_nodes,
        "n_edges": graph.n_edges,
        "kernels": usable,
        "capabilities": {key: caps[key] for key in ("csr_matvecs", "numba")},
        "l2_bytes": caps["l2_bytes"],
        "repeats": repeats,
        "widths": per_width,
    }
    return "\n".join(lines), metrics


def test_bench_kernel_sweep(benchmark):
    graph, widths, repeats = _kernel_setup()
    text, metrics = benchmark.pedantic(
        run_kernel_sweep, args=(graph, widths, repeats), rounds=1, iterations=1
    )
    report("kernels", text)
    report_json("kernels", metrics)
