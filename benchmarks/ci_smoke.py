"""CI smoke-benchmark driver: one machine-readable perf record per commit.

Merges the metrics the smoke benchmarks wrote via ``report_json``
(``benchmarks/results/batch_engine.json``, ``serving.json``,
``parallel.json``, ``threaded.json`` and ``kernels.json``) into
``benchmarks/results/ci_smoke.json``, which the CI workflow uploads as an
artifact — giving every commit a comparable record of the perf trajectory
(batch speedup, walk throughput, matmat kernel timings, cache hit-rate,
warm/cold serving latency, micro-batch amortization, and the ``workers=2``
sharded-solver leg: walltime per worker count plus the power/auto parity
columns must hold even on a one-core CI runner).

A missing or non-smoke input is recomputed in its smoke configuration, so
the script also works standalone::

    PYTHONPATH=src python benchmarks/ci_smoke.py
"""

from __future__ import annotations

import json
import os
import platform
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

os.environ["REPRO_BENCH_BATCH_SMOKE"] = "1"
os.environ["REPRO_BENCH_SERVING_SMOKE"] = "1"
os.environ["REPRO_BENCH_PARALLEL_SMOKE"] = "1"
os.environ["REPRO_BENCH_GATEWAY_SMOKE"] = "1"
os.environ["REPRO_BENCH_OBS_SMOKE"] = "1"

from benchmarks.common import RESULTS_DIR  # noqa: E402


def _metrics(name: str, rerun) -> dict:
    """Load ``results/<name>.json`` if it holds smoke metrics, else rerun."""
    path = RESULTS_DIR / f"{name}.json"
    if path.exists():
        payload = json.loads(path.read_text())
        if payload.get("mode") == "smoke":
            return payload
    _, metrics = rerun()
    return metrics


def main() -> int:
    from benchmarks import (
        bench_batch_engine,
        bench_gateway,
        bench_obs,
        bench_parallel,
        bench_serving,
    )

    payload = {
        "schema": 1,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "batch_engine": _metrics(
            "batch_engine",
            lambda: bench_batch_engine.run_batch_engine(*bench_batch_engine._setup()),
        ),
        "kernels": _metrics(
            "kernels",
            lambda: bench_batch_engine.run_kernel_sweep(*bench_batch_engine._kernel_setup()),
        ),
        "serving": _metrics(
            "serving", lambda: bench_serving.run_serving(*bench_serving._setup())
        ),
        "parallel": _metrics(
            "parallel", lambda: bench_parallel.run_parallel(*bench_parallel._setup())
        ),
        # The threaded leg records the PR-9 single-query levers: the
        # threaded kernel's threads-vs-walltime table (bit-equality against
        # scipy asserted in-bench) and the row-sharded single-query solve.
        "threaded": _metrics(
            "threaded",
            lambda: bench_parallel.run_threaded(*bench_parallel._threaded_setup()),
        ),
        # The gateway leg records the serving-path health numbers per commit:
        # GDSF-vs-LRU hit rates, admission shed rate, queue-depth bound, and
        # the cold-tenant prefetch lift (all asserted inside the bench).
        "gateway": _metrics(
            "gateway", lambda: bench_gateway.run_gateway(*bench_gateway._setup())
        ),
        # The obs leg prices the PR-10 observability layer: the disabled
        # fast path must stay under 2% of replay walltime (asserted
        # in-bench), the enabled-mode delta is tracked report-only, and the
        # deterministic cache-hit / certified counts are gated exactly.
        "obs": _metrics("obs", lambda: bench_obs.run_obs(*bench_obs._setup())),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "ci_smoke.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[ci_smoke] -> {out}")
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
