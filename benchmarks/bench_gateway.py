"""Gateway benchmark: multi-tenant replay through the serving front.

A multi-tenant query log (per-tenant Zipf hot sets, one bursty cold tenant;
see :func:`repro.datasets.sample_multitenant_queries`) is replayed against
the query-log graph three ways:

(a) **eviction policy** — the same Zipf stream replayed through a
    byte-budgeted :class:`repro.serving.ColumnCache` under LRU vs GDSF
    eviction with a budget far below the working set; GDSF's popularity
    x cost / size priority must reach at least LRU's hit rate (asserted —
    the ISSUE acceptance criterion);
(b) **admission control** — the full mixed log submitted to a
    :class:`repro.gateway.RankGateway` with a queue-depth bound and
    per-tenant token buckets on a deterministic replay clock; the observed
    queue depth must never exceed the bound and every admitted future must
    resolve (both asserted), with the shed rate and per-lane latency
    quantiles reported;
(c) **prefetch** — a cold tenant trickles while heavy tenants churn its
    columns out of a small cache, then bursts; a single
    :class:`repro.gateway.Prefetcher` round between trickle and burst must
    measurably lift the cold tenant's burst hit rate vs the identical
    replay without prefetch (asserted);
(d) **cache-miss fast path** — a cold query stream is replayed twice
    against a BibNet-scale graph through *started* gateways (real deadline
    threads, real wall clock), once with ``local_topk=False`` (every miss
    waits out batch assembly, then pays a full dual power iteration) and
    once with ``local_topk=True`` (the certified local push solver resolves
    inline).  Both paths must return bit-identical top-k indices, the
    certified outcome must dominate escalations, and the local path's p99
    cold-miss latency must beat the batcher path's (all asserted — the
    ISSUE acceptance criterion).

``REPRO_BENCH_GATEWAY_SMOKE=1`` selects the small CI configuration.
Results land in ``benchmarks/results/gateway.{txt,json}``.
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks.common import report, report_json
from repro.datasets import (
    QLogConfig,
    TenantSpec,
    generate_qlog,
    sample_multitenant_queries,
)
from repro.datasets.bibnet import BibNetConfig, generate_bibnet
from repro.gateway import AdmissionConfig, Prefetcher, RankGateway, Shed
from repro.serving import ColumnCache

ALPHA = 0.25
K = 10
COLD_TENANT = "cold-burst"


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_GATEWAY_SMOKE", "") == "1"


def _tenants() -> "list[TenantSpec]":
    return [
        TenantSpec("alpha-heavy", weight=2.0, s=1.1),
        TenantSpec("beta-steady", weight=1.0, s=1.3),
        TenantSpec(COLD_TENANT, weight=0.25, s=1.3, burst_phases=(3,), burst_multiplier=25.0),
    ]


def _setup():
    """(graph, population, n_queries, miss_setup) for the active mode."""
    if _smoke():
        qlog = generate_qlog(QLogConfig(n_concepts=60, seed=13))
        return qlog.graph, qlog.phrase_nodes, 500, _miss_setup(32, seed=101)
    qlog = generate_qlog(QLogConfig(n_concepts=400, seed=13))
    return qlog.graph, qlog.phrase_nodes, 3000, _miss_setup(64, seed=202)


def _miss_setup(n_queries: int, seed: int):
    """(graph, warmup_node, cold_nodes) for the section-(d) miss replay.

    The qlog graphs above are too small for the miss comparison to be
    informative — a full dual solve there costs ~2 ms, below the batcher's
    assembly delay — so section (d) uses a BibNet at the scale where a
    cache miss is the dominant serving cost (~60k arcs: a full dual power
    iteration takes tens of milliseconds).  Query nodes are cold paper
    nodes; the first draw is a sacrificial warm-up query (lane creation,
    deadline-thread start, and the local path's cached in-mass vector are
    deployment startup costs, not per-miss costs).  Which queries certify
    vs escalate is deterministic for a fixed (graph, seed): the push
    budget is counted in work units, not wall time.
    """
    bib = generate_bibnet(BibNetConfig(n_papers=2200, n_authors=740, seed=29))
    pool = np.random.default_rng(seed).permutation(bib.paper_nodes)
    cold = [int(node) for node in pool[1 : 1 + n_queries]]
    return bib.graph, int(pool[0]), cold


class _ReplayClock:
    """Deterministic arrival clock: one tick per query."""

    def __init__(self, tick: float) -> None:
        self.tick = float(tick)
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self) -> None:
        self.now += self.tick


def _policy_hit_rate(graph, stream: np.ndarray, policy: str, max_bytes: int) -> float:
    cache = ColumnCache(max_bytes=max_bytes, alpha=ALPHA, policy=policy)
    for q in stream.tolist():
        cache.get(graph, "f", int(q))
    return cache.cache_info().hit_rate


def _replay_cold_misses(graph, warmup_node: int, cold_nodes: "list[int]", local: bool):
    """Serial submit->result round-trips over a cold stream; one gateway.

    Every measured query is a cache miss on a fresh gateway, and the
    latency is what a synchronous caller experiences: for the batcher path
    that includes waiting out ``max_delay`` until the deadline thread
    flushes; the local path resolves inline at submit.
    """
    gateway = RankGateway(
        graph, cache=ColumnCache(alpha=ALPHA), local_topk=local
    ).start()
    gateway.submit(warmup_node, k=K).result(timeout=60)
    latencies_ms, topk = [], {}
    for node in cold_nodes:
        t0 = time.perf_counter()
        future = gateway.submit(node, k=K)
        indices, _scores = future.result(timeout=60)
        latencies_ms.append((time.perf_counter() - t0) * 1e3)
        topk[node] = indices.tolist()
    snap = gateway.snapshot()
    gateway.close()
    return np.asarray(latencies_ms), topk, snap


def run_gateway(graph, population, n_queries, miss_setup) -> "tuple[str, dict]":
    log = sample_multitenant_queries(
        population, n_queries, _tenants(), n_phases=4, seed=23
    )
    n_distinct = int(np.unique(log.nodes).size)
    col_bytes = graph.n_nodes * 8
    lines = [
        "Multi-tenant serving gateway: eviction policy, admission, prefetch",
        f"graph: {graph.n_nodes} nodes / {graph.n_edges} arcs; "
        f"{n_queries} queries, {len(log.tenants)} tenants, 4 phases "
        f"({n_distinct} distinct nodes); mode: {'smoke' if _smoke() else 'full'}",
        "",
    ]

    # ---------------------------------------------------------------- (a) #
    # Cache budget ~12% of the distinct working set: eviction decides hits.
    budget_cols = max(4, n_distinct // 8)
    max_bytes = budget_cols * col_bytes
    lru_rate = _policy_hit_rate(graph, log.nodes, "lru", max_bytes)
    gdsf_rate = _policy_hit_rate(graph, log.nodes, "gdsf", max_bytes)
    lines.append(
        f"(a) eviction policy on the mixed Zipf log, budget {budget_cols} columns "
        f"of {n_distinct} distinct"
    )
    lines.append(f"  byte-LRU hit rate: {lru_rate:7.1%}")
    lines.append(f"  GDSF     hit rate: {gdsf_rate:7.1%}   (popularity x cost / size)")
    assert gdsf_rate >= lru_rate, (
        f"GDSF hit rate {gdsf_rate:.3f} fell below byte-LRU {lru_rate:.3f}"
    )

    # ---------------------------------------------------------------- (b) #
    depth_bound = 8
    clock = _ReplayClock(tick=0.001)
    gateway = RankGateway(
        graph,
        cache=ColumnCache(alpha=ALPHA, policy="gdsf"),
        admission=AdmissionConfig(rate=250.0, burst=25, max_queue_depth=depth_bound),
        max_batch=1000,  # no size trigger: admission alone bounds the queue
        clock=clock,
    )
    futures = []
    max_depth = 0
    for tid, node in zip(log.tenant_ids.tolist(), log.nodes.tolist()):
        clock.advance()
        result = gateway.submit(int(node), tenant=log.tenants[tid], k=K)
        max_depth = max(max_depth, gateway.total_pending())
        if isinstance(result, Shed):
            if result.reason == "queue_full":
                gateway.flush_all()  # backpressure: drain, then keep going
        else:
            futures.append(result)
    gateway.flush_all()
    n_resolved = sum(future.done() for future in futures)
    snap = gateway.snapshot()
    info = gateway.cache.cache_info()
    lane_key = ("default", "roundtriprank", ALPHA)
    lane = snap.lanes[lane_key]
    lines.append("")
    lines.append(
        f"(b) gateway replay: token bucket (250/s, burst 25) + depth bound {depth_bound}"
    )
    lines.append(
        f"  admitted {snap.n_admitted} / shed {snap.n_shed} "
        f"(rate_limit {snap.shed_by_reason.get('rate_limit', 0)}, "
        f"queue_full {snap.shed_by_reason.get('queue_full', 0)}) "
        f"-> shed rate {snap.shed_rate:.1%}"
    )
    lines.append(
        f"  max observed queue depth: {max_depth} (bound {depth_bound}); "
        f"resolved futures: {n_resolved}/{len(futures)}"
    )
    lines.append(
        f"  shared-cache hit rate {info.hit_rate:.1%} "
        f"({info.hits} hits / {info.misses} misses, {info.evictions} evictions); "
        f"byte utilization {info.byte_utilization:.1%}"
    )
    lines.append(
        f"  lane latency: p50 {lane.p50_ms:.3f} ms, p90 {lane.p90_ms:.3f} ms, "
        f"p99 {lane.p99_ms:.3f} ms over {lane.count} samples"
    )
    assert max_depth <= depth_bound, f"queue depth {max_depth} exceeded bound {depth_bound}"
    assert n_resolved == len(futures), (
        f"{len(futures) - n_resolved} accepted futures never resolved"
    )
    gateway.close()

    # ---------------------------------------------------------------- (c) #
    # Cold tenant: during phases 0-2 its trickle-cached columns are churned
    # out by the heavy tenants (the cache holds ~70% of the working set);
    # one prefetch round before the phase-3 burst re-warms its hot set from
    # the frequency estimates that *outlived* eviction.  Two metrics:
    # first-touch residency (was a distinct burst node resident when first
    # queried — the cold-start cost prefetch exists to remove) and the
    # per-arrival hit rate over the whole burst.
    c_budget = 6 * budget_cols  # ~70% of distinct columns stay resident

    def replay_with_cold_measurement(with_prefetch: bool):
        small = ColumnCache(max_bytes=c_budget * col_bytes, alpha=ALPHA)
        gw = RankGateway(graph, cache=small, max_batch=64)
        cold_id = log.tenants.index(COLD_TENANT)
        for phase in range(3):
            tids, nodes = log.phase_slice(phase)
            for tid, node in zip(tids.tolist(), nodes.tolist()):
                gw.ask(int(node), tenant=log.tenants[tid], k=K)
        warmed = 0
        if with_prefetch:
            warmed = Prefetcher(
                gw, per_tenant=16, batch_size=48, chunk=8
            ).run_once()
        seen: set = set()
        first_hits = hits = total = 0
        tids, nodes = log.phase_slice(3)
        for tid, node in zip(tids.tolist(), nodes.tolist()):
            node = int(node)
            if tid == cold_id:
                resident = int(
                    small.contains(graph, "f", node, ALPHA)
                    and small.contains(graph, "t", node, ALPHA)
                )
                total += 1
                hits += resident
                if node not in seen:
                    seen.add(node)
                    first_hits += resident
            gw.ask(node, tenant=log.tenants[tid], k=K)
        gw.close()
        return (
            first_hits / len(seen) if seen else 0.0,
            hits / total if total else 0.0,
            warmed,
        )

    cold_first, cold_arrival, _ = replay_with_cold_measurement(with_prefetch=False)
    warm_first, warm_arrival, n_warmed = replay_with_cold_measurement(with_prefetch=True)
    lines.append("")
    lines.append(
        f"(c) cold-tenant burst, one prefetch round between trickle and burst "
        f"(cache {c_budget} of {n_distinct} columns)"
    )
    lines.append(
        f"  no prefetch:   first-touch {cold_first:7.1%}   per-arrival {cold_arrival:7.1%}"
    )
    lines.append(
        f"  with prefetch: first-touch {warm_first:7.1%}   per-arrival {warm_arrival:7.1%}"
        f"   ({n_warmed} columns solved by prefetch)"
    )
    assert warm_first > cold_first, (
        f"prefetch did not lift the cold-tenant first-touch hit rate "
        f"({warm_first:.3f} <= {cold_first:.3f})"
    )
    assert warm_arrival >= cold_arrival, (
        f"prefetch hurt the per-arrival hit rate ({warm_arrival:.3f} < {cold_arrival:.3f})"
    )
    # ---------------------------------------------------------------- (d) #
    # Cache-miss fast path: the same cold stream through a batcher-only
    # gateway vs the certified local-push path, real wall clock.  p99 over
    # misses is the headline — the local path's worst case (an escalation:
    # push work, then the identical full solve through the shared cache)
    # must still undercut batch assembly + full dual solve.
    miss_graph, warmup_node, cold_nodes = miss_setup
    off_ms, off_topk, _ = _replay_cold_misses(
        miss_graph, warmup_node, cold_nodes, local=False
    )
    loc_ms, loc_topk, loc_snap = _replay_cold_misses(
        miss_graph, warmup_node, cold_nodes, local=True
    )
    off_p50, off_p99 = (float(np.percentile(off_ms, p)) for p in (50, 99))
    loc_p50, loc_p99 = (float(np.percentile(loc_ms, p)) for p in (50, 99))
    lines.append("")
    lines.append(
        f"(d) cold-miss fast path on BibNet ({miss_graph.n_nodes} nodes / "
        f"{miss_graph.n_edges} arcs), {len(cold_nodes)} cold queries, k={K}"
    )
    lines.append(
        f"  batcher path:  p50 {off_p50:7.1f} ms   p99 {off_p99:7.1f} ms   "
        f"max {off_ms.max():7.1f} ms"
    )
    lines.append(
        f"  local path:    p50 {loc_p50:7.1f} ms   p99 {loc_p99:7.1f} ms   "
        f"max {loc_ms.max():7.1f} ms   "
        f"({loc_snap.n_local_certified} certified / "
        f"{loc_snap.n_local_escalated} escalated)"
    )
    lines.append(
        f"  p99 miss speedup: {off_p99 / loc_p99:.2f}x   "
        f"p50: {off_p50 / loc_p50:.2f}x"
    )
    assert all(off_topk[node] == loc_topk[node] for node in cold_nodes), (
        "local path returned a different top-k than the batcher path"
    )
    assert loc_snap.n_local_certified > loc_snap.n_local_escalated, (
        f"escalations dominate ({loc_snap.n_local_escalated} vs "
        f"{loc_snap.n_local_certified} certified): the fast path is not fast"
    )
    assert loc_p99 < off_p99, (
        f"local path did not improve p99 miss latency "
        f"({loc_p99:.1f} ms >= {off_p99:.1f} ms)"
    )

    lines.append("")
    lines.append(
        "acceptance: GDSF >= LRU, depth bounded + all admitted futures resolved, "
        "prefetch lifts cold-tenant hit rate, local path beats batcher p99 on "
        "cold misses with bit-identical top-k — all hold"
    )

    metrics = {
        "mode": "smoke" if _smoke() else "full",
        "n_nodes": graph.n_nodes,
        "n_edges": graph.n_edges,
        "n_queries": int(n_queries),
        "n_distinct": n_distinct,
        "n_tenants": len(log.tenants),
        "budget_columns": int(budget_cols),
        "lru_hit_rate": lru_rate,
        "gdsf_hit_rate": gdsf_rate,
        "shed_rate": snap.shed_rate,
        "shed_by_reason": dict(snap.shed_by_reason),
        "n_admitted": snap.n_admitted,
        "n_resolved": int(n_resolved),
        "max_queue_depth": int(max_depth),
        "queue_depth_bound": depth_bound,
        "gateway_hit_rate": info.hit_rate,
        "gateway_byte_utilization": info.byte_utilization,
        "lane_p50_ms": lane.p50_ms,
        "lane_p90_ms": lane.p90_ms,
        "lane_p99_ms": lane.p99_ms,
        "cold_cache_columns": int(c_budget),
        "cold_tenant_first_touch_no_prefetch": cold_first,
        "cold_tenant_first_touch_prefetch": warm_first,
        "cold_tenant_hit_rate_no_prefetch": cold_arrival,
        "cold_tenant_hit_rate_prefetch": warm_arrival,
        "prefetched_columns": int(n_warmed),
        "miss_graph_nodes": miss_graph.n_nodes,
        "miss_graph_edges": miss_graph.n_edges,
        "miss_queries": len(cold_nodes),
        "miss_p50_ms_batcher": off_p50,
        "miss_p99_ms_batcher": off_p99,
        "miss_p50_ms_local": loc_p50,
        "miss_p99_ms_local": loc_p99,
        "miss_p99_speedup": off_p99 / loc_p99,
        "n_local_certified": loc_snap.n_local_certified,
        "n_local_escalated": loc_snap.n_local_escalated,
    }
    return "\n".join(lines), metrics


def test_bench_gateway(benchmark):
    graph, population, n_queries, miss_setup = _setup()
    text, metrics = benchmark.pedantic(
        run_gateway,
        args=(graph, population, n_queries, miss_setup),
        rounds=1,
        iterations=1,
    )
    report("gateway", text)
    report_json("gateway", metrics)
