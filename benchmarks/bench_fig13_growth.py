"""Fig. 13: rate of growth of snapshot, active set and query time.

Normalizes the three Fig. 12 series by their first-snapshot values.
Expected shape (paper): the active set and query time grow markedly slower
than the snapshot (1.9x and ~2x vs 7.4x on BibNet).  At laptop scale the
gap is smaller — the sub-linear regime needs the graph to dwarf the random
walk's locality — but active-set growth should not exceed snapshot growth
by much, and the two derived series should track each other.
"""

from benchmarks.common import report
from repro.graph import growth_rates


def run_fig13(measurements) -> str:
    snapshots = growth_rates([row["snapshot_bytes"] for row in measurements])
    actives = growth_rates([row["active_mean"] for row in measurements])
    times = growth_rates([row["time_mean"] for row in measurements])

    lines = [
        "Fig. 13 — rate of growth w.r.t. the first snapshot",
        "",
        f"{'cutoff':>7s} {'snapshot':>10s} {'active set':>12s} {'query time':>12s}",
    ]
    for row, s, a, t in zip(measurements, snapshots, actives, times):
        lines.append(f"{row['cutoff']:7d} {s:10.2f} {a:12.2f} {t:12.2f}")
    lines.append("")
    lines.append(
        f"total growth: snapshot {snapshots[-1]:.2f}x, active set "
        f"{actives[-1]:.2f}x, query time {times[-1]:.2f}x"
    )
    lines.append("")
    lines.append("paper shape: active set and query time grow far slower than")
    lines.append("the snapshot (1.9x / ~2x vs 7.4x); see EXPERIMENTS.md for the")
    lines.append("scale caveat at laptop-size graphs.")
    return "\n".join(lines)


def test_fig13_growth(benchmark, snapshot_measurements):
    text = benchmark.pedantic(
        run_fig13, args=(snapshot_measurements,), rounds=1, iterations=1
    )
    report("fig13_growth", text)
