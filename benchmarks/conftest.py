"""Session-scoped datasets and tasks shared across the figure benchmarks."""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.common import bench_scale
from repro.datasets import BibNetConfig, QLogConfig, generate_bibnet, generate_qlog
from repro.eval import (
    RankingTask,
    make_author_task,
    make_equivalent_task,
    make_url_task,
    make_venue_task,
)
from repro.graph import take_snapshots


@pytest.fixture(scope="session")
def scale():
    return bench_scale()


@pytest.fixture(scope="session")
def bibnet_eval(scale):
    """Effectiveness-scale bibliographic network (Fig. 5, 8, 9, 10)."""
    return generate_bibnet(
        BibNetConfig(n_papers=scale.eval_papers, n_authors=scale.eval_authors, seed=13)
    )


@pytest.fixture(scope="session")
def qlog_eval(scale):
    """Effectiveness-scale query log (Fig. 5, 8, 9, 10)."""
    return generate_qlog(QLogConfig(n_concepts=scale.eval_concepts, seed=13))


def _disjoint_dev(make, dataset, n_dev: int, dev_seed: int, test_task: RankingTask):
    """Development task with queries disjoint from the test task's."""
    test_queries = {case.query for case in test_task.cases}
    dev = make(dataset, n_dev + len(test_queries), seed=dev_seed)
    dev.cases = [c for c in dev.cases if c.query not in test_queries][:n_dev]
    return dev


@pytest.fixture(scope="session")
def tasks(scale, bibnet_eval, qlog_eval):
    """Test and development splits for Tasks 1-4 (paper Sect. VI-A)."""
    n_test, n_dev = scale.test_queries, scale.dev_queries
    test = {
        "task1": make_author_task(bibnet_eval, n_test, seed=101),
        "task2": make_venue_task(bibnet_eval, n_test, seed=102),
        "task3": make_url_task(qlog_eval, n_test, seed=103),
        "task4": make_equivalent_task(qlog_eval, n_test, seed=104),
    }
    dev = {
        "task1": _disjoint_dev(make_author_task, bibnet_eval, n_dev, 201, test["task1"]),
        "task2": _disjoint_dev(make_venue_task, bibnet_eval, n_dev, 202, test["task2"]),
        "task3": _disjoint_dev(make_url_task, qlog_eval, n_dev, 203, test["task3"]),
        "task4": _disjoint_dev(
            make_equivalent_task, qlog_eval, n_dev, 204, test["task4"]
        ),
    }
    return {"test": test, "dev": dev}


@pytest.fixture(scope="session")
def bibnet_full(scale):
    """Efficiency-scale graph for Fig. 11."""
    return generate_bibnet(
        BibNetConfig(n_papers=scale.full_papers, n_authors=scale.full_authors, seed=42)
    )


@pytest.fixture(scope="session")
def efficiency_queries(scale, bibnet_full):
    rng = np.random.default_rng(7)
    return [
        int(q)
        for q in rng.choice(
            bibnet_full.graph.n_nodes, scale.efficiency_queries, replace=False
        )
    ]


@pytest.fixture(scope="session")
def snapshot_suite(scale):
    """Five cumulative snapshots of a growing BibNet (Fig. 12-13)."""
    bibnet = generate_bibnet(
        BibNetConfig(
            n_papers=scale.snapshot_papers, n_authors=scale.snapshot_authors, seed=99
        )
    )
    years = sorted(set(bibnet.node_timestamps.tolist()))
    picks = np.linspace(2, len(years) - 1, 5).astype(int)
    cutoffs = [years[i] for i in picks]
    snaps = take_snapshots(bibnet.graph, bibnet.node_timestamps, cutoffs)
    return bibnet, snaps


@pytest.fixture(scope="session")
def snapshot_measurements(scale, snapshot_suite):
    """Run the Fig. 12 experiment once; Fig. 12 and Fig. 13 both read it.

    For each snapshot ``i`` (served by ``i + 1`` GPs, as in the paper), a
    fresh uniform sample of queries runs distributed 2SBound; we record the
    snapshot size, active-set size, and query time.
    """
    from repro.distributed import SimulatedCluster

    _, snaps = snapshot_suite
    rows = []
    for i, snap in enumerate(snaps):
        rng = np.random.default_rng(71)
        cluster = SimulatedCluster(snap.graph, n_gps=i + 1)
        active, times = [], []
        n_q = min(scale.snapshot_queries, snap.graph.n_nodes)
        for q in rng.choice(snap.graph.n_nodes, n_q, replace=False):
            _, stats = cluster.query(int(q), 10, epsilon=0.01)
            active.append(stats.active_set_bytes)
            times.append(stats.wall_time_s)
        rows.append(
            {
                "cutoff": snap.cutoff,
                "n_nodes": snap.graph.n_nodes,
                "n_edges": snap.graph.n_edges,
                "snapshot_bytes": snap.size_bytes,
                "active_mean": float(np.mean(active)),
                "active_ci99": 2.58 * float(np.std(active)) / np.sqrt(len(active)),
                "time_mean": float(np.mean(times)),
                "time_ci99": 2.58 * float(np.std(times)) / np.sqrt(len(times)),
                "n_gps": i + 1,
            }
        )
    return rows
