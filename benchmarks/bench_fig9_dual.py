"""Fig. 9: RoundTripRank+ (beta tuned on dev queries) vs dual-sensed baselines.

Regenerates the paper's dual-sensed comparison: TCommute (T=10), ObjSqrtInv
(d=0.25), and the harmonic/arithmetic means of F-Rank and T-Rank, all at
their fixed trade-offs; RoundTripRank+ tunes beta per task on development
queries disjoint from the test queries.  Expected shape (paper):
RoundTripRank+ best everywhere, TCommute runner-up, ~+7% NDCG@5 on average.
"""

from benchmarks.common import report
from repro.baselines import (
    ArithmeticMeasure,
    HarmonicMeasure,
    ObjSqrtInvMeasure,
    RoundTripRankPlusMeasure,
    TCommuteMeasure,
)
from repro.eval import compare_measures, evaluate_measure, run_task_suite, tune_beta

BETA_GRID = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


def run_fig9(tasks) -> str:
    lines = ["Fig. 9 — NDCG@K of RoundTripRank+ and dual-sensed baselines", ""]

    # Tune RoundTripRank+ per task on the development split.
    tuned_betas = {}
    for name, dev_task in tasks["dev"].items():
        tuned_betas[name], _ = tune_beta(
            RoundTripRankPlusMeasure(), dev_task, BETA_GRID, k=5
        )
    lines.append(
        "tuned beta*: "
        + ", ".join(f"{name}={beta:.1f}" for name, beta in tuned_betas.items())
    )
    lines.append("")

    baselines = [
        TCommuteMeasure(),
        ObjSqrtInvMeasure(),
        HarmonicMeasure(),
        ArithmeticMeasure(),
    ]
    suite = run_task_suite(baselines, list(tasks["test"].values()), (5, 10, 20))
    # RoundTripRank+ uses a different beta per task, so evaluate per task.
    for name, task in tasks["test"].items():
        result = evaluate_measure(
            RoundTripRankPlusMeasure(beta=tuned_betas[name]), task, (5, 10, 20)
        )
        suite.add(result)
    # show RoundTripRank+ first
    suite.results = {
        "RoundTripRank+": suite.results["RoundTripRank+"],
        **{k: v for k, v in suite.results.items() if k != "RoundTripRank+"},
    }
    lines.append(suite.format_table())

    averages = {
        m: suite.average_ndcg(m, 5)
        for m in suite.measure_names
        if m != "RoundTripRank+"
    }
    runner_up = max(averages, key=averages.get)
    rtr = suite.average_ndcg("RoundTripRank+", 5)
    lines.append("")
    lines.append(
        f"Average NDCG@5: RoundTripRank+ {rtr:.4f} vs runner-up {runner_up} "
        f"{averages[runner_up]:.4f} "
        f"({(rtr / max(averages[runner_up], 1e-12) - 1) * 100:+.1f}%)"
    )
    for task_name in suite.task_names:
        t = compare_measures(
            suite.results["RoundTripRank+"][task_name],
            suite.results[runner_up][task_name],
            k=5,
        )
        stars = "**" if t.significant(0.01) else ("*" if t.significant(0.05) else "")
        lines.append(
            f"  {task_name}: diff {t.mean_difference:+.4f}, p = {t.p_value:.4f} {stars}"
        )
    lines.append("")
    lines.append("paper shape: RoundTripRank+ best in every column (~+7% over")
    lines.append("TCommute at NDCG@5 on average).")
    return "\n".join(lines)


def test_fig9_dual_sensed(benchmark, tasks):
    text = benchmark.pedantic(run_fig9, args=(tasks,), rounds=1, iterations=1)
    report("fig9_dual", text)
