"""Fig. 6-7: qualitative venue rankings for two topic queries.

The paper shows the top-5 venues for "spatio temporal data" (Fig. 6) and
"semantic web" (Fig. 7) under F-Rank/PPR, T-Rank, and RoundTripRank.
Expected shape: importance surfaces broad majors, specificity surfaces
topic workshops, RoundTripRank interleaves both.
"""

import numpy as np

from benchmarks.common import report
from repro.core import frank_vector, roundtriprank, trank_vector


def _top_venues(bibnet, scores: np.ndarray, k: int = 5) -> list[str]:
    venue_ids = np.flatnonzero(bibnet.graph.type_mask("venue"))
    order = venue_ids[np.argsort(-scores[venue_ids], kind="stable")]
    return [bibnet.graph.label_of(int(v))[len("venue:"):] for v in order[:k]]


def run_fig6_fig7(bibnet) -> str:
    lines = ["Fig. 6-7 — top-5 venues per measure (qualitative)", ""]
    for phrase in ("spatio temporal data", "semantic web"):
        query = bibnet.term_query(phrase)
        f = frank_vector(bibnet.graph, query)
        t = trank_vector(bibnet.graph, query)
        r = roundtriprank(bibnet.graph, query)
        cols = {
            "(a) F-Rank/PPR": _top_venues(bibnet, f),
            "(b) T-Rank": _top_venues(bibnet, t),
            "(c) RoundTripRank": _top_venues(bibnet, r),
        }
        lines.append(f'query: "{phrase}"')
        width = 36
        lines.append("".join(h.ljust(width) for h in cols))
        for i in range(5):
            lines.append("".join(cols[h][i].ljust(width) for h in cols))
        lines.append("")

        # shape checks (soft, reported not asserted): majors dominate (a),
        # workshops dominate (b), and (c) mixes both kinds.
        majors_in_f = sum("Major" in v for v in cols["(a) F-Rank/PPR"])
        wkshp_in_t = sum("Wkshp" in v for v in cols["(b) T-Rank"])
        kinds_in_r = {
            "major": sum("Major" in v for v in cols["(c) RoundTripRank"]),
            "wkshp": sum("Wkshp" in v for v in cols["(c) RoundTripRank"]),
        }
        lines.append(
            f"  shape: majors in (a) = {majors_in_f}/5, workshops in (b) = "
            f"{wkshp_in_t}/5, RoundTripRank mixes {kinds_in_r['major']} majors"
            f" + {kinds_in_r['wkshp']} workshops"
        )
        lines.append("")
    lines.append("paper shape: (a) broad venues, (b) specific venues, (c) both.")
    return "\n".join(lines)


def test_fig6_fig7_venue_rankings(benchmark, bibnet_eval):
    text = benchmark.pedantic(run_fig6_fig7, args=(bibnet_eval,), rounds=1, iterations=1)
    report("fig6_fig7_qualitative", text)
