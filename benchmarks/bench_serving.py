"""Serving-layer benchmark: column cache, micro-batcher, fused top-k.

A Zipf-distributed query stream (``s = 1.1``, the skew of real search logs;
see :func:`repro.datasets.sample_zipf_queries`) is served two ways on the
same graph:

(a) **cold** — every query runs its own F/T solves and a full-vector sort,
    exactly what callers did before the serving layer existed;
(b) **warm** — queries go through a :class:`repro.serving.ColumnCache` and
    the fused :func:`repro.serving.topk_select`; repeated queries hit cached
    columns, so the median query cost collapses to a vector product plus a
    partial selection.

Median per-query latency must improve by >= 3x (asserted), and the cache
hit-rate is reported against the stream's repetition rate.  A second section
measures micro-batch assembly (:class:`repro.serving.MicroBatcher`) against
sequential single-query solves on the cache-miss (distinct-query) workload,
and a third verifies fused top-k parity: ``roundtriprank_topk`` indices must
equal the full-vector stable ranking on the Fig. 2 toy graph and on the
query-log graph (asserted, k = 20).

``REPRO_BENCH_SERVING_SMOKE=1`` selects the small CI configuration.
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks.common import report, report_json
from repro.core.frank import frank_vector
from repro.core.trank import trank_vector
from repro.datasets import QLogConfig, generate_qlog, sample_zipf_queries, toy_bibliographic_graph
from repro.engine import roundtriprank_batch
from repro.serving import ColumnCache, MicroBatcher, roundtriprank_topk, topk_select

K = 20
ZIPF_S = 1.1


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SERVING_SMOKE", "") == "1"


def _setup():
    """(graph, population, n_queries) for the active mode."""
    if _smoke():
        qlog = generate_qlog(QLogConfig(n_concepts=60, seed=13))
        return qlog.graph, qlog.phrase_nodes, 150
    qlog = generate_qlog(QLogConfig(n_concepts=500, seed=13))
    return qlog.graph, qlog.phrase_nodes, 600


def _serve_cold(graph, query: int, alpha: float):
    """The pre-serving-layer path: two fresh solves, full-vector sort."""
    f = frank_vector(graph, query, alpha)
    t = trank_vector(graph, query, alpha)
    scores = f * t
    total = scores.sum()
    if total > 0:
        scores = scores / total
    order = np.argsort(-scores, kind="stable")[:K]
    return order, scores[order]


def _serve_warm(cache: ColumnCache, graph, query: int, alpha: float):
    """The serving-layer path: cached columns + fused partial selection."""
    f = cache.get(graph, "f", query, alpha)
    t = cache.get(graph, "t", query, alpha)
    scores = f * t
    total = scores.sum()
    if total > 0:
        scores = scores / total
    return topk_select(scores, K)


def _latencies(serve, stream) -> np.ndarray:
    out = np.empty(len(stream))
    for i, q in enumerate(stream):
        start = time.perf_counter()
        serve(int(q))
        out[i] = time.perf_counter() - start
    return out * 1000.0  # ms


def run_serving(graph, population, n_queries) -> "tuple[str, dict]":
    alpha = 0.25
    stream = sample_zipf_queries(population, n_queries, s=ZIPF_S, seed=23)
    n_distinct = int(np.unique(stream).size)
    lines = [
        "Serving layer: LRU column cache + micro-batching + fused top-k",
        f"graph: {graph.n_nodes} nodes / {graph.n_edges} arcs; "
        f"{n_queries} Zipf(s={ZIPF_S}) queries over {population.size} phrases "
        f"({n_distinct} distinct); mode: {'smoke' if _smoke() else 'full'}",
        "",
        f"(a) repeated-query latency, cold per-query solves vs warm ColumnCache (k={K})",
    ]

    # Warm the operator caches (not the column cache) so both paths time
    # steady-state sweeps rather than first-touch CSR preparation.
    _serve_cold(graph, int(stream[0]), alpha)
    roundtriprank_batch(graph, [int(stream[0])], alpha)

    cold_ms = _latencies(lambda q: _serve_cold(graph, q, alpha), stream)
    cache = ColumnCache(alpha=alpha)
    warm_ms = _latencies(lambda q: _serve_warm(cache, graph, q, alpha), stream)
    info = cache.cache_info()
    cold_median = float(np.median(cold_ms))
    warm_median = float(np.median(warm_ms))
    speedup = cold_median / warm_median
    lines.append(
        f"  cold: median {cold_median:8.3f} ms/query  (p90 {np.percentile(cold_ms, 90):8.3f} ms)"
    )
    lines.append(
        f"  warm: median {warm_median:8.3f} ms/query  (p90 {np.percentile(warm_ms, 90):8.3f} ms)"
    )
    lines.append(
        f"  median speedup: {speedup:6.1f}x   cache hit-rate {info.hit_rate:.1%} "
        f"({info.hits} hits / {info.misses} misses, {info.current_bytes} bytes)"
    )
    assert speedup >= 3.0, f"warm-cache median speedup {speedup:.2f}x < 3x"

    # Correctness spot-check: warm top-k score profiles must match the cold
    # path's (value-wise; index parity under one shared solve is section c —
    # cold runs the bit-exact power method, warm the verified auto method,
    # so exact ties may permute between them).
    for q in np.unique(stream)[:25]:
        _, cold_val = _serve_cold(graph, int(q), alpha)
        _, warm_val = _serve_warm(cache, graph, int(q), alpha)
        assert np.allclose(cold_val, warm_val, atol=1e-9), f"score mismatch for query {q}"

    lines.append("")
    lines.append("(b) micro-batch assembly vs sequential solves (distinct queries, no cache)")
    distinct = [int(q) for q in np.unique(stream)[: min(64, n_distinct)]]
    with_timer = time.perf_counter()
    for q in distinct:
        _serve_cold(graph, q, alpha)
    seq_s = time.perf_counter() - with_timer
    batcher = MicroBatcher(graph, max_batch=16, alpha=alpha)
    with_timer = time.perf_counter()
    futures = [batcher.submit(q, k=K) for q in distinct]
    batcher.flush()
    for future in futures:
        future.result()
    batch_s = time.perf_counter() - with_timer
    batch_speedup = seq_s / batch_s
    seq_qps = len(distinct) / seq_s
    batch_qps = len(distinct) / batch_s
    lines.append(f"  sequential: {seq_s * 1000.0:9.1f} ms  ({seq_qps:9.1f} queries/s)")
    lines.append(f"  batched:    {batch_s * 1000.0:9.1f} ms  ({batch_qps:9.1f} queries/s)")
    lines.append(
        f"  speedup:    {batch_speedup:9.2f}x  "
        f"({batcher.stats.n_flushes} flushes, mean batch {batcher.stats.mean_batch_size:.1f})"
    )

    lines.append("")
    lines.append(f"(c) fused top-k parity vs full-vector ranking (k={K})")
    toy = toy_bibliographic_graph()
    toy_ok = True
    for q in range(toy.n_nodes):
        idx, _ = roundtriprank_topk(toy, q, K)
        full = roundtriprank_batch(toy, [q])[:, 0]
        toy_ok &= np.array_equal(idx, np.argsort(-full, kind="stable")[:K])
    assert toy_ok, "fused top-k diverged from full ranking on the toy graph"
    qlog_ok = True
    for q in distinct[:10]:
        idx, _ = roundtriprank_topk(graph, q, K)
        full = roundtriprank_batch(graph, [q])[:, 0]
        qlog_ok &= np.array_equal(idx, np.argsort(-full, kind="stable")[:K])
    assert qlog_ok, "fused top-k diverged from full ranking on the query-log graph"
    lines.append(
        f"  toy graph (all {toy.n_nodes} queries): identical; "
        f"query-log graph (10 queries): identical"
    )
    lines.append("")
    lines.append("acceptance: warm-cache median speedup >= 3x and top-k parity — both hold")

    metrics = {
        "mode": "smoke" if _smoke() else "full",
        "n_nodes": graph.n_nodes,
        "n_edges": graph.n_edges,
        "n_queries": int(n_queries),
        "n_distinct_queries": n_distinct,
        "zipf_s": ZIPF_S,
        "k": K,
        "cold_median_ms": cold_median,
        "warm_median_ms": warm_median,
        "median_speedup": speedup,
        "cache_hit_rate": info.hit_rate,
        "cache_bytes": info.current_bytes,
        "microbatch_speedup": batch_speedup,
        "topk_parity": bool(toy_ok and qlog_ok),
    }
    return "\n".join(lines), metrics


def test_bench_serving(benchmark):
    graph, population, n_queries = _setup()
    text, metrics = benchmark.pedantic(
        run_serving, args=(graph, population, n_queries), rounds=1, iterations=1
    )
    report("serving", text)
    report_json("serving", metrics)
