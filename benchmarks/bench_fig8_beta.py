"""Fig. 8: effect of the specificity bias beta on each task (NDCG@5).

Regenerates the four beta-sweep curves.  Expected shape (paper Sect.
VI-A2): extremes (beta -> 0 or 1) hurt everywhere; optima differ by task —
Task 1 beta* ~ 0.5, Task 2 beta* < 0.5, Task 3 beta* < 0.5, Task 4
beta* > 0.5 — so no fixed trade-off serves all tasks.
"""

import numpy as np

from benchmarks.common import report
from repro.baselines import RoundTripRankPlusMeasure
from repro.eval import FTCache, evaluate_measure

BETAS = tuple(np.round(np.linspace(0.0, 1.0, 11), 2))


def run_fig8(tasks) -> str:
    lines = ["Fig. 8 — NDCG@5 of RoundTripRank+ under varying beta", ""]
    header = "beta    " + "".join(f"{name:>10s}" for name in tasks["test"])
    lines.append(header)
    curves: dict[str, dict[float, float]] = {name: {} for name in tasks["test"]}
    for name, task in tasks["test"].items():
        cache = FTCache()
        for beta in BETAS:
            result = evaluate_measure(
                RoundTripRankPlusMeasure(beta=float(beta)), task, (5,), ft_cache=cache
            )
            curves[name][beta] = result.mean_ndcg(5)
    for beta in BETAS:
        row = f"{beta:4.2f}    " + "".join(
            f"{curves[name][beta]:10.4f}" for name in curves
        )
        lines.append(row)
    lines.append("")
    optima = {name: max(curve, key=curve.get) for name, curve in curves.items()}
    lines.append(
        "beta*   " + "".join(f"{optima[name]:10.2f}" for name in curves)
    )
    lines.append("")
    lines.append("paper shape: beta* ~ 0.5 (Task 1), < 0.5 (Tasks 2-3), > 0.5")
    lines.append("(Task 4); both extremes underperform the interior.")
    return "\n".join(lines)


def test_fig8_beta_sweep(benchmark, tasks):
    text = benchmark.pedantic(run_fig8, args=(tasks,), rounds=1, iterations=1)
    report("fig8_beta", text)
