"""Fig. 11: 2SBound query time vs slack (a) and approximation quality (b).

(a) compares the naive full-iteration baseline with the four bound schemes
    (2SBound, and the weakened G+S / Gupta / Sarkar configurations) at
    slacks 0.01 / 0.02 / 0.03, K = 10 — expected shape (paper): 2SBound
    fastest; ~2-10x faster than the weaker bound schemes; orders faster
    than naive (the gap widens with graph size, since naive scales with
    |E| and 2SBound with the active set).
(b) measures NDCG, top-K precision and Kendall's tau of 2SBound's ranking
    against the exact one — expected shape: all > 0.9 at small slack,
    degrading gently as the slack buys speed.
"""

import numpy as np

from benchmarks.common import report
from repro.eval import kendall_tau_on_union, ndcg_at_k, topk_overlap_precision
from repro.topk import naive_topk, twosbound_topk
from repro.utils.timer import Timer

#: The paper sweeps eps in {0.01, 0.02, 0.03} against its score scale; our
#: unnormalized scores live roughly a decade lower (different graph scale
#: and normalization), so the grid is shifted to land in the same
#: quality regime (see EXPERIMENTS.md).
EPSILONS = (0.001, 0.005, 0.01)
K = 10


def run_fig11(bibnet_full, queries) -> str:
    graph = bibnet_full.graph
    lines = [
        "Fig. 11 — efficiency of 2SBound on the full synthetic BibNet",
        f"graph: {graph.n_nodes} nodes / {graph.n_edges} arcs; "
        f"K = {K}; {len(queries)} queries",
        "",
        "(a) mean query time (ms)",
    ]

    exact: dict[int, object] = {}
    with Timer() as t_naive:
        for q in queries:
            exact[q] = naive_topk(graph, q, K)
    naive_ms = t_naive.elapsed_ms / len(queries)
    header = f"{'scheme':10s}" + "".join(f"  eps={e:<7.3f}" for e in EPSILONS)
    lines.append(header)
    lines.append(f"{'Naive':10s}" + "".join(f"  {naive_ms:9.1f}" for _ in EPSILONS))

    quality_rows = []
    for scheme in ("g+s", "gupta", "sarkar", "2sbound"):
        cells = []
        for epsilon in EPSILONS:
            results = {}
            with Timer() as t_run:
                for q in queries:
                    results[q] = twosbound_topk(
                        graph, q, K, epsilon=epsilon, scheme=scheme
                    )
            cells.append(t_run.elapsed_ms / len(queries))
            if scheme == "2sbound":
                ndcg, prec, tau = [], [], []
                for q in queries:
                    approx = results[q].nodes
                    # Compare only over positively-scored nodes: the order
                    # among exact zeros is arbitrary for *both* methods, so
                    # counting it as error would just measure tie-breaking.
                    positive = [
                        v for v in exact[q].nodes if exact[q].scores[v] > 1e-15
                    ]
                    k_eff = min(K, len(positive))
                    if k_eff == 0:
                        continue
                    truth = positive[:k_eff]
                    ndcg.append(ndcg_at_k(approx[:k_eff], set(truth), k_eff))
                    prec.append(topk_overlap_precision(approx, truth, k_eff))
                    tau.append(kendall_tau_on_union(approx, truth, k_eff))
                quality_rows.append(
                    (
                        epsilon,
                        cells[-1],
                        float(np.mean(ndcg)),
                        float(np.mean(prec)),
                        float(np.mean(tau)),
                    )
                )
        lines.append(f"{scheme:10s}" + "".join(f"  {c:9.1f}" for c in cells))

    lines.append("")
    lines.append("(b) approximation quality of 2SBound vs exact ranking")
    lines.append(f"{'eps':>7s} {'time ms':>9s} {'NDCG':>8s} {'precision':>10s} {'tau':>8s}")
    for epsilon, ms, ndcg, prec, tau in quality_rows:
        lines.append(f"{epsilon:7.3f} {ms:9.1f} {ndcg:8.3f} {prec:10.3f} {tau:8.3f}")
    lines.append("")
    lines.append("paper shape: 2SBound fastest (2-10x over G+S/Gupta/Sarkar,")
    lines.append(">=2 orders over Naive at the paper's 25M-edge scale); quality")
    lines.append("stays high while larger slack trades quality for speed.")
    return "\n".join(lines)


def test_fig11_efficiency(benchmark, bibnet_full, efficiency_queries):
    text = benchmark.pedantic(
        run_fig11, args=(bibnet_full, efficiency_queries), rounds=1, iterations=1
    )
    report("fig11_efficiency", text)
