"""Ablations beyond the paper's figures (DESIGN.md Sect. 5).

1. Expansion granularity m: the paper uses m = 100 (f-side) / m = 5
   (t-side) and reports insensitivity to small changes; we sweep both.
2. Heavy-degree laziness: our implementation adds lazy handling of
   hub-adjacency (DESIGN.md, Substitution notes); we measure its effect on
   query time and active-set size.
"""

import numpy as np

from benchmarks.common import report
from repro.topk import InstrumentedGraphAccess, LocalGraphAccess, twosbound_topk
from repro.utils.timer import Timer


def run_ablation(bibnet_full, queries) -> str:
    graph = bibnet_full.graph
    queries = queries[:8]
    lines = [
        "Ablations — expansion granularity and heavy-node laziness",
        f"graph: {graph.n_nodes} nodes / {graph.n_edges} arcs; eps = 0.01; "
        f"{len(queries)} queries",
        "",
        "(1) expansion granularity sweep (mean ms/query)",
        f"{'m_f':>6s} {'m_t':>5s} {'ms':>9s}",
    ]
    for m_f, m_t in ((25, 5), (100, 1), (100, 5), (100, 20), (400, 5)):
        with Timer() as t:
            for q in queries:
                twosbound_topk(graph, q, 10, epsilon=0.01, m_f=m_f, m_t=m_t)
        marker = "  <- paper setting" if (m_f, m_t) == (100, 5) else ""
        lines.append(f"{m_f:6d} {m_t:5d} {t.elapsed_ms / len(queries):9.1f}{marker}")

    lines.append("")
    lines.append("(2) heavy-degree laziness (mean per query)")
    lines.append(f"{'threshold':>10s} {'ms':>9s} {'active KB':>11s}")
    for threshold in (None, 64, 256, 1024):
        times, actives = [], []
        for q in queries:
            access = InstrumentedGraphAccess(LocalGraphAccess(graph))
            with Timer() as t:
                twosbound_topk(access, q, 10, epsilon=0.01, heavy_degree=threshold)
            times.append(t.elapsed_ms)
            actives.append(access.active_set_bytes)
        label = "off" if threshold is None else str(threshold)
        lines.append(
            f"{label:>10s} {np.mean(times):9.1f} {np.mean(actives) / 1e3:11.1f}"
        )
    lines.append("")
    lines.append("expected: times stable across m (paper: 'not sensitive to")
    lines.append("small changes in m'); laziness shrinks the active set on")
    lines.append("hub-heavy graphs without changing results.")
    return "\n".join(lines)


def test_ablation_m_and_heavy(benchmark, bibnet_full, efficiency_queries):
    text = benchmark.pedantic(
        run_ablation, args=(bibnet_full, efficiency_queries), rounds=1, iterations=1
    )
    report("ablation", text)
