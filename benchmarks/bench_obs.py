"""Observability overhead benchmark: the off switch must be (near) free.

Two costs are measured over a gateway replay of a Zipf query stream:

- **disabled overhead** (asserted): with observability off, every
  instrumentation point is one module-global check.  The per-event cost of
  that check is measured in a tight loop, the number of events a replay
  emits is counted from an enabled run, and the product — the total
  disabled-mode instrumentation cost buried in the replay — must stay
  under **2%** of the replay's walltime (the ISSUE acceptance criterion).
- **enabled overhead** (report-only): the walltime delta between disabled
  and enabled replays of the same stream, interleaved and min-of-N so
  machine noise mostly cancels.  Enabled mode allocates spans and takes
  the registry lock; it is priced, not gated.

The replay also yields two **deterministic** counters that the CI
regression gate compares exactly: the shared-cache hit count of the fixed
stream and the certified count of the local fast-path leg — if either
moves, serving behavior changed, not just timing.  Artifacts for the
``python -m repro.obs`` CLI land next to the other results:
``obs_snapshot.json`` (JSON snapshot) and ``obs_trace.jsonl`` (bounded
trace sink of the final enabled replay).

``REPRO_BENCH_OBS_SMOKE=1`` selects the small CI configuration.  Results
land in ``benchmarks/results/obs.{txt,json}``.
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks.common import RESULTS_DIR, report, report_json
from repro import obs
from repro.datasets import QLogConfig, generate_qlog
from repro.datasets.bibnet import BibNetConfig, generate_bibnet
from repro.gateway import RankGateway
from repro.serving import ColumnCache

ALPHA = 0.25
K = 10

#: Acceptance bound: disabled-mode instrumentation cost vs replay walltime.
DISABLED_OVERHEAD_LIMIT_PCT = 2.0

#: Counter updates per query beyond the spans (cache hit/miss incs per kind,
#: flush trigger, solver counters, latency observe, ...) — a deliberate
#: overestimate, so the asserted bound is conservative.
EVENTS_PER_QUERY_ESTIMATE = 8


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_OBS_SMOKE", "") == "1"


def _setup():
    """(graph, stream, local_graph, cold_nodes) for the active mode."""
    if _smoke():
        qlog = generate_qlog(QLogConfig(n_concepts=60, seed=13))
        n_queries, n_local = 300, 24
        bib = generate_bibnet(BibNetConfig(n_papers=1200, n_authors=400, seed=29))
    else:
        qlog = generate_qlog(QLogConfig(n_concepts=300, seed=13))
        n_queries, n_local = 2000, 48
        bib = generate_bibnet(BibNetConfig(n_papers=2200, n_authors=740, seed=29))
    rng = np.random.default_rng(47)
    population = np.asarray(qlog.phrase_nodes)
    # Zipf-flavored popularity over the phrase nodes: realistic hit rates.
    weights = 1.0 / np.arange(1, population.size + 1) ** 1.1
    weights /= weights.sum()
    stream = rng.choice(population, size=n_queries, p=weights)
    cold = [int(n) for n in rng.permutation(bib.paper_nodes)[:n_local]]
    return qlog.graph, stream.astype(np.int64), bib.graph, cold


def _replay(graph, stream: np.ndarray) -> float:
    """One synchronous gateway replay of the stream; returns walltime (s).

    The gateway stays unstarted (no deadline threads): every ``ask`` flushes
    the lane inline, so the replay is deterministic and single-threaded —
    exactly what an overhead comparison needs.
    """
    gateway = RankGateway(graph, cache=ColumnCache(alpha=ALPHA))
    t0 = time.perf_counter()
    for node in stream.tolist():
        gateway.ask(int(node), k=K)
    elapsed = time.perf_counter() - t0
    gateway.close()
    return elapsed


def _disabled_event_cost(n: int = 50_000) -> float:
    """Per-event cost (s) of one disabled span + one gated counter inc."""
    assert not obs.enabled()
    gated = obs.counter("repro_bench_obs_probe_total", "Overhead probe counter.")
    t0 = time.perf_counter()
    for _ in range(n):
        with obs.span("probe"):
            pass
        gated.inc()
    return (time.perf_counter() - t0) / (2 * n)


def _cache_hits_total() -> float:
    hits = obs.REGISTRY.get("repro_cache_hits_total")
    return hits.total() if hits is not None else 0.0


def _local_leg(local_graph, cold_nodes: "list[int]"):
    """Certified local fast-path leg under observability; deterministic.

    Returns the gateway snapshot plus the raw certified count read straight
    off the per-gateway registry (``GatewayStats`` rides an ungated
    :class:`repro.obs.MetricsRegistry`) — the snapshot is *derived* from
    that registry, so the two must agree exactly.
    """
    gateway = RankGateway(
        local_graph, cache=ColumnCache(alpha=ALPHA), local_topk=True
    )
    for node in cold_nodes:
        gateway.ask(node, k=K)
    snap = gateway.snapshot()
    registry_certified = gateway.stats.registry.counter(
        "repro_gateway_local_total", labels=("outcome",)
    ).value(outcome="certified")
    gateway.close()
    return snap, registry_certified


def run_obs(graph, stream, local_graph, cold_nodes) -> "tuple[str, dict]":
    n_queries = int(stream.size)
    lines = [
        "Observability overhead: disabled fast path, enabled cost, span coverage",
        f"graph: {graph.n_nodes} nodes / {graph.n_edges} arcs; "
        f"{n_queries} queries ({int(np.unique(stream).size)} distinct); "
        f"mode: {'smoke' if _smoke() else 'full'}",
        "",
    ]
    obs.disable()
    obs.clear_spans()
    try:
        # -------------------------------------------------- disabled cost #
        per_event_s = _disabled_event_cost()
        _replay(graph, stream)  # warm caches/imports outside the timed legs
        t_disabled = min(_replay(graph, stream) for _ in range(2))

        # ---------------------------------------------------- enabled legs #
        obs.enable()
        obs.clear_spans()
        sink_before = obs.sink_stats()["recorded"]
        hits_before = _cache_hits_total()
        t_enabled = _replay(graph, stream)
        cache_hits = _cache_hits_total() - hits_before
        n_spans = obs.sink_stats()["recorded"] - sink_before
        span_names = {s.name for s in obs.spans()}

        # Interleave a second pair so drift hits both modes equally.
        obs.disable()
        t_disabled = min(t_disabled, _replay(graph, stream))
        obs.enable()
        t_enabled = min(t_enabled, _replay(graph, stream))

        # ------------------------------------------------- local topk leg #
        local_snap, registry_certified = _local_leg(local_graph, cold_nodes)
        span_names |= {s.name for s in obs.spans()}

        # ------------------------------------------------------ artifacts #
        RESULTS_DIR.mkdir(exist_ok=True)
        trace_path = RESULTS_DIR / "obs_trace.jsonl"
        obs.set_trace_file(str(trace_path), max_file_spans=2000)
        _replay(graph, stream[: min(40, n_queries)])
        obs.set_trace_file(None)
        obs.write_snapshot(RESULTS_DIR / "obs_snapshot.json")
    finally:
        obs.disable()
        obs.set_trace_file(None)
        obs.clear_spans()

    # The disabled-mode cost buried in a replay: every span the enabled run
    # recorded was a no-op check when disabled, plus the (overestimated)
    # per-query counter updates.
    n_events = n_spans + EVENTS_PER_QUERY_ESTIMATE * n_queries
    disabled_cost_s = n_events * per_event_s
    disabled_pct = 100.0 * disabled_cost_s / t_disabled
    enabled_pct = 100.0 * (t_enabled - t_disabled) / t_disabled

    lines.append(
        f"disabled fast path: {per_event_s * 1e9:.0f} ns/event x {n_events} events "
        f"= {disabled_cost_s * 1e3:.3f} ms buried in {t_disabled * 1e3:.1f} ms replay "
        f"-> {disabled_pct:.3f}% (bound {DISABLED_OVERHEAD_LIMIT_PCT:.1f}%)"
    )
    lines.append(
        f"enabled mode:       {t_enabled * 1e3:.1f} ms vs {t_disabled * 1e3:.1f} ms "
        f"disabled -> {enabled_pct:+.1f}% walltime (report-only)"
    )
    lines.append(
        f"trace coverage:     {n_spans} spans/replay; layers: "
        + ", ".join(sorted(span_names))
    )
    lines.append(
        f"deterministic:      {int(cache_hits)} cache hits on the fixed stream; "
        f"local leg {local_snap.n_local_certified} certified / "
        f"{local_snap.n_local_escalated} escalated over {len(cold_nodes)} queries"
    )

    required = {
        "gateway.submit",
        "gateway.admission",
        "gateway.lane",
        "batcher.flush",
        "cache.get_many",
        "engine.solve",
        "ops.kernel",
        "topk.local",
    }
    missing = required - span_names
    assert not missing, f"enabled replay missed span layers: {sorted(missing)}"
    assert disabled_pct < DISABLED_OVERHEAD_LIMIT_PCT, (
        f"disabled-mode instrumentation overhead {disabled_pct:.3f}% exceeds "
        f"{DISABLED_OVERHEAD_LIMIT_PCT}% of replay walltime"
    )
    assert registry_certified == local_snap.n_local_certified, (
        f"per-gateway registry certified count {registry_certified} disagrees "
        f"with the gateway snapshot {local_snap.n_local_certified}"
    )

    lines.append("")
    lines.append(
        f"acceptance: all span layers present, disabled overhead "
        f"{disabled_pct:.3f}% < {DISABLED_OVERHEAD_LIMIT_PCT}%, registry and "
        "snapshot certified counts agree — all hold"
    )

    metrics = {
        "mode": "smoke" if _smoke() else "full",
        "n_nodes": graph.n_nodes,
        "n_edges": graph.n_edges,
        "n_queries": n_queries,
        "per_event_ns": per_event_s * 1e9,
        "n_events": int(n_events),
        "spans_per_replay": int(n_spans),
        "replay_disabled_s": t_disabled,
        "replay_enabled_s": t_enabled,
        "disabled_overhead_pct": disabled_pct,
        "enabled_overhead_pct": enabled_pct,
        "cache_hits": int(cache_hits),
        "local_queries": len(cold_nodes),
        "n_local_certified": local_snap.n_local_certified,
        "n_local_escalated": local_snap.n_local_escalated,
        "span_layers": sorted(span_names),
    }
    return "\n".join(lines), metrics


def test_bench_obs(benchmark):
    args = _setup()
    text, metrics = benchmark.pedantic(run_obs, args=args, rounds=1, iterations=1)
    report("obs", text)
    report_json("obs", metrics)
