"""Fig. 12: active-set size and query time on growing graph snapshots.

Five cumulative snapshots of a growing synthetic BibNet; the i-th snapshot
is served by i graph processors (the paper's AP/GP simulation).  For each
snapshot we report its size, the mean active-set size with a 99% CI, and
the mean distributed query time.  Expected shape (paper): the active set
is a small fraction of the snapshot, and active-set size correlates with
query time.
"""

from benchmarks.common import report


def run_fig12(measurements) -> str:
    lines = [
        "Fig. 12 — snapshot size, active set and query time "
        "(i-th snapshot on i GPs, eps = 0.01, K = 10)",
        "",
        f"{'cutoff':>7s} {'nodes':>8s} {'snapshot':>11s} {'active set':>16s} "
        f"{'query time':>16s} {'GPs':>4s}",
    ]
    for row in measurements:
        lines.append(
            f"{row['cutoff']:7d} {row['n_nodes']:8d} "
            f"{row['snapshot_bytes'] / 1e6:9.2f}MB "
            f"{row['active_mean'] / 1e3:9.1f}±{row['active_ci99'] / 1e3:4.1f}KB "
            f"{row['time_mean'] * 1e3:10.1f}±{row['time_ci99'] * 1e3:4.1f}ms "
            f"{row['n_gps']:4d}"
        )
    last = measurements[-1]
    fraction = last["active_mean"] / last["snapshot_bytes"]
    lines.append("")
    lines.append(
        f"active set on the largest snapshot: {fraction:.1%} of the snapshot "
        "(paper: 0.3% at 2M-node scale - the fraction shrinks with scale)"
    )
    return "\n".join(lines)


def test_fig12_snapshots(benchmark, snapshot_measurements):
    text = benchmark.pedantic(
        run_fig12, args=(snapshot_measurements,), rounds=1, iterations=1
    )
    report("fig12_snapshots", text)
