"""Fig. 5: RoundTripRank vs mono-sensed baselines, NDCG@{5,10,20}, Tasks 1-4.

Regenerates the paper's main effectiveness table.  Expected shape (paper):
RoundTripRank best in every column; F-Rank/PPR runner-up on average;
AdamicAdar collapses on Task 3 (its only 2-hop path was reserved).
"""

from benchmarks.common import report
from repro.baselines import (
    AdamicAdarMeasure,
    FRankMeasure,
    RoundTripRankMeasure,
    SimRankMeasure,
    TRankMeasure,
)
from repro.eval import compare_measures, run_task_suite


def run_fig5(tasks) -> str:
    measures = [
        RoundTripRankMeasure(),
        FRankMeasure(),
        TRankMeasure(),
        SimRankMeasure(),
        AdamicAdarMeasure(),
    ]
    test_tasks = list(tasks["test"].values())
    suite = run_task_suite(measures, test_tasks, (5, 10, 20))

    lines = ["Fig. 5 — NDCG@K of RoundTripRank and mono-sensed baselines", ""]
    lines.append(suite.format_table())

    # the paper's headline significance test: RoundTripRank vs the best
    # mono-sensed baseline at NDCG@5, paired over all task queries.
    averages = {
        m: suite.average_ndcg(m, 5) for m in suite.measure_names if m != "RoundTripRank"
    }
    runner_up = max(averages, key=averages.get)
    rtr_avg = suite.average_ndcg("RoundTripRank", 5)
    lines.append("")
    lines.append(
        f"Average NDCG@5: RoundTripRank {rtr_avg:.4f} vs runner-up "
        f"{runner_up} {averages[runner_up]:.4f} "
        f"({(rtr_avg / max(averages[runner_up], 1e-12) - 1) * 100:+.1f}%)"
    )
    for task_name in suite.task_names:
        t = compare_measures(
            suite.results["RoundTripRank"][task_name],
            suite.results[runner_up][task_name],
            k=5,
        )
        stars = "**" if t.significant(0.01) else ("*" if t.significant(0.05) else "")
        lines.append(
            f"  {task_name}: diff {t.mean_difference:+.4f}, p = {t.p_value:.4f} {stars}"
        )
    lines.append("")
    lines.append("paper shape: RTR wins on average (+10% over F-Rank/PPR);")
    lines.append("AdamicAdar ~0 on Task 3; T-Rank strong on Task 4.")
    return "\n".join(lines)


def test_fig5_mono_sensed(benchmark, tasks):
    text = benchmark.pedantic(run_fig5, args=(tasks,), rounds=1, iterations=1)
    report("fig5_mono", text)
