"""Parallel batch solver: walltime vs worker count, with parity checks.

Three ways to solve the same ``q``-query F-Rank workload, timed on one
graph:

(a) the *sequential path* — ``q`` independent ``frank_vector`` solves (what
    serving looked like before the batch engine);
(b) the single-process batch engine — one multi-column solve
    (``frank_batch``, the PR-1 amortization);
(c) the sharded pool — ``frank_batch(..., workers=N)`` for each measured
    worker count: columns striped over N processes against the
    shared-memory operator.

Parity is asserted before any timing is reported: ``method="power"`` shards
must match the single-process batch bit for bit, and the ``method="auto"``
columns must agree to 1e-10, so no speedup is ever bought with accuracy.

Pool startup (process spawn + numpy import) and operator publication are
warmed before the timed laps — steady-state serving reuses both, so the
laps measure the per-batch cost, not one-time setup.  Results land in
``benchmarks/results/parallel.{txt,json}`` and feed ``ci_smoke.json``.

``REPRO_BENCH_PARALLEL_SMOKE=1`` switches to the toy graph with
``workers=2`` (the CI smoke leg); the default measures the
effectiveness-scale BibNet at ``workers`` in {2, 4}.  The acceptance gate
(full mode only) requires the ``workers=4`` sharded solve to beat the
sequential path by >= 2.5x; the sharded-vs-batch ratio is recorded too —
on a single-core host it sits near or below 1.0 (the shards time-slice one
CPU), which the report states rather than hides.
"""

from __future__ import annotations

import os

import numpy as np

from benchmarks.common import report, report_json
from repro.core.frank import frank_vector
from repro.datasets import BibNetConfig, generate_bibnet, toy_bibliographic_graph
from repro.engine import frank_batch
from repro.parallel import effective_workers, get_pool
from repro.utils.timer import Timer


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_PARALLEL_SMOKE", "") == "1"


def _setup():
    """(graph, n_queries, worker_counts) for the active mode."""
    if _smoke():
        return toy_bibliographic_graph(), 12, (2,)
    graph = generate_bibnet(BibNetConfig(n_papers=1400, n_authors=500, seed=13)).graph
    return graph, 64, (2, 4)


def run_parallel(graph, n_queries, worker_counts) -> "tuple[str, dict]":
    rng = np.random.default_rng(17)
    queries = [int(q) for q in rng.choice(graph.n_nodes, size=n_queries, replace=False)]
    max_workers = max(worker_counts)
    assert effective_workers(n_queries, max_workers) == max_workers, (
        "bench batch below the crossover: the parallel path would not engage"
    )

    lines = [
        "Parallel batch solver walltime vs workers (shared-memory shards)",
        f"graph: {graph.n_nodes} nodes / {graph.n_edges} arcs; "
        f"{n_queries}-query batch; cpus: {os.cpu_count()}; "
        f"mode: {'smoke' if _smoke() else 'full'}",
        "",
    ]

    # Warm every path: page faults, operator caches, segment publication and
    # the worker processes themselves (spawn + numpy import is one-time).
    frank_vector(graph, queries[0])
    frank_batch(graph, queries[: min(4, n_queries)])
    get_pool(max_workers)
    for workers in worker_counts:
        frank_batch(graph, queries, workers=workers)

    # Parity first: no timing without correctness.
    power_batch = frank_batch(graph, queries, method="power")
    power_shard = frank_batch(graph, queries, method="power", workers=max_workers)
    assert np.array_equal(power_batch, power_shard), "power shards must be bit-exact"
    auto_parity = float(
        np.abs(
            frank_batch(graph, queries)
            - frank_batch(graph, queries, workers=max_workers)
        ).max()
    )
    assert auto_parity < 1e-10, f"auto shard divergence {auto_parity:.3e}"

    with Timer() as t_seq:
        for q in queries:
            frank_vector(graph, q)
    with Timer() as t_batch:
        frank_batch(graph, queries)
    shard_ms = {}
    for workers in worker_counts:
        with Timer() as t_shard:
            frank_batch(graph, queries, workers=workers)
        shard_ms[workers] = t_shard.elapsed_ms

    lines.append(f"  sequential single-query: {t_seq.elapsed_ms:9.1f} ms")
    lines.append(f"  batch, one process:      {t_batch.elapsed_ms:9.1f} ms")
    for workers, ms in shard_ms.items():
        lines.append(
            f"  batch, workers={workers}:        {ms:9.1f} ms  "
            f"({t_seq.elapsed_ms / ms:5.2f}x vs sequential, "
            f"{t_batch.elapsed_ms / ms:5.2f}x vs one-process batch)"
        )

    best = max(worker_counts)
    speedup_vs_sequential = t_seq.elapsed_ms / shard_ms[best]
    speedup_vs_batch = t_batch.elapsed_ms / shard_ms[best]
    lines.append("")
    lines.append(
        f"  at workers={best}: {speedup_vs_sequential:.2f}x vs the sequential path, "
        f"{speedup_vs_batch:.2f}x vs the single-process batch "
        f"(power parity bit-exact, auto parity {auto_parity:.1e})"
    )
    if os.cpu_count() == 1:
        lines.append(
            "  note: single-CPU host — shards time-slice one core, so the "
            "vs-batch ratio reflects dispatch overhead, not parallel scaling"
        )
    if not _smoke():
        assert speedup_vs_sequential >= 2.5, (
            f"workers={best} speedup {speedup_vs_sequential:.2f}x < 2.5x vs sequential"
        )
        lines.append("acceptance: workers=4 >= 2.5x vs the sequential path — holds")

    metrics = {
        "mode": "smoke" if _smoke() else "full",
        "n_nodes": graph.n_nodes,
        "n_edges": graph.n_edges,
        "n_queries": n_queries,
        "cpus": os.cpu_count(),
        "sequential_ms": t_seq.elapsed_ms,
        "batch_one_process_ms": t_batch.elapsed_ms,
        "shard_ms": {str(w): ms for w, ms in shard_ms.items()},
        "speedup_vs_sequential": speedup_vs_sequential,
        "speedup_vs_batch": speedup_vs_batch,
        "auto_parity_max_abs": auto_parity,
    }
    return "\n".join(lines), metrics


def test_bench_parallel(benchmark):
    graph, n_queries, worker_counts = _setup()
    text, metrics = benchmark.pedantic(
        run_parallel,
        args=(graph, n_queries, worker_counts),
        rounds=1,
        iterations=1,
    )
    report("parallel", text)
    report_json("parallel", metrics)
