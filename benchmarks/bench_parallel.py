"""Parallel batch solver: walltime vs worker count, with parity checks.

Three ways to solve the same ``q``-query F-Rank workload, timed on one
graph:

(a) the *sequential path* — ``q`` independent ``frank_vector`` solves (what
    serving looked like before the batch engine);
(b) the single-process batch engine — one multi-column solve
    (``frank_batch``, the PR-1 amortization);
(c) the sharded pool — ``frank_batch(..., workers=N)`` for each measured
    worker count: columns striped over N processes against the
    shared-memory operator.

Parity is asserted before any timing is reported: ``method="power"`` shards
must match the single-process batch bit for bit, and the ``method="auto"``
columns must agree to 1e-10, so no speedup is ever bought with accuracy.

Pool startup (process spawn + numpy import) and operator publication are
warmed before the timed laps — steady-state serving reuses both, so the
laps measure the per-batch cost, not one-time setup.  Results land in
``benchmarks/results/parallel.{txt,json}`` and feed ``ci_smoke.json``.

``REPRO_BENCH_PARALLEL_SMOKE=1`` switches to the toy graph with
``workers=2`` (the CI smoke leg); the default measures the
effectiveness-scale BibNet at ``workers`` in {2, 4}.  The acceptance gate
(full mode only) requires the ``workers=4`` sharded solve to beat the
sequential path by >= 2.5x; the sharded-vs-batch ratio is recorded too —
on a single-core host it sits near or below 1.0 (the shards time-slice one
CPU), which the report states rather than hides.

A second leg (``test_bench_threaded`` -> ``results/threaded.{txt,json}``)
measures the PR-9 single-query levers: the ``threaded`` matmat kernel at
1/2/4 threads (matvec-shaped and wide sweeps, bit-equality against scipy
asserted before any number is reported) and the row-sharded single-query
``frank_vector(..., workers=N)`` against the sequential solve — the
speedup is asserted only when the host actually has cores to show it;
a one-core container gets the honest dispatch-overhead note instead.
"""

from __future__ import annotations

import os

import numpy as np

from benchmarks.common import report, report_json
from repro.core.frank import frank_vector
from repro.datasets import BibNetConfig, generate_bibnet, toy_bibliographic_graph
from repro.engine import frank_batch
from repro.ops import KERNEL_THREADS_ENV_VAR, get_operator
from repro.parallel import (
    ROWSHARD_MIN_NNZ_ENV_VAR,
    active_route,
    effective_workers,
    get_pool,
)
from repro.utils.timer import Timer


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_PARALLEL_SMOKE", "") == "1"


def _setup():
    """(graph, n_queries, worker_counts) for the active mode."""
    if _smoke():
        return toy_bibliographic_graph(), 12, (2,)
    graph = generate_bibnet(BibNetConfig(n_papers=1400, n_authors=500, seed=13)).graph
    return graph, 64, (2, 4)


def run_parallel(graph, n_queries, worker_counts) -> "tuple[str, dict]":
    rng = np.random.default_rng(17)
    queries = [int(q) for q in rng.choice(graph.n_nodes, size=n_queries, replace=False)]
    max_workers = max(worker_counts)
    assert effective_workers(n_queries, max_workers) == max_workers, (
        "bench batch below the crossover: the parallel path would not engage"
    )

    lines = [
        "Parallel batch solver walltime vs workers (shared-memory shards)",
        f"graph: {graph.n_nodes} nodes / {graph.n_edges} arcs; "
        f"{n_queries}-query batch; cpus: {os.cpu_count()}; "
        f"mode: {'smoke' if _smoke() else 'full'}",
        "",
    ]

    # Warm every path: page faults, operator caches, segment publication and
    # the worker processes themselves (spawn + numpy import is one-time).
    frank_vector(graph, queries[0])
    frank_batch(graph, queries[: min(4, n_queries)])
    get_pool(max_workers)
    for workers in worker_counts:
        frank_batch(graph, queries, workers=workers)

    # Parity first: no timing without correctness.
    power_batch = frank_batch(graph, queries, method="power")
    power_shard = frank_batch(graph, queries, method="power", workers=max_workers)
    assert np.array_equal(power_batch, power_shard), "power shards must be bit-exact"
    auto_parity = float(
        np.abs(
            frank_batch(graph, queries)
            - frank_batch(graph, queries, workers=max_workers)
        ).max()
    )
    assert auto_parity < 1e-10, f"auto shard divergence {auto_parity:.3e}"

    with Timer() as t_seq:
        for q in queries:
            frank_vector(graph, q)
    with Timer() as t_batch:
        frank_batch(graph, queries)
    shard_ms = {}
    for workers in worker_counts:
        with Timer() as t_shard:
            frank_batch(graph, queries, workers=workers)
        shard_ms[workers] = t_shard.elapsed_ms

    lines.append(f"  sequential single-query: {t_seq.elapsed_ms:9.1f} ms")
    lines.append(f"  batch, one process:      {t_batch.elapsed_ms:9.1f} ms")
    for workers, ms in shard_ms.items():
        lines.append(
            f"  batch, workers={workers}:        {ms:9.1f} ms  "
            f"({t_seq.elapsed_ms / ms:5.2f}x vs sequential, "
            f"{t_batch.elapsed_ms / ms:5.2f}x vs one-process batch)"
        )

    best = max(worker_counts)
    speedup_vs_sequential = t_seq.elapsed_ms / shard_ms[best]
    speedup_vs_batch = t_batch.elapsed_ms / shard_ms[best]
    lines.append("")
    lines.append(
        f"  at workers={best}: {speedup_vs_sequential:.2f}x vs the sequential path, "
        f"{speedup_vs_batch:.2f}x vs the single-process batch "
        f"(power parity bit-exact, auto parity {auto_parity:.1e})"
    )
    if os.cpu_count() == 1:
        lines.append(
            "  note: single-CPU host — shards time-slice one core, so the "
            "vs-batch ratio reflects dispatch overhead, not parallel scaling"
        )
    if not _smoke():
        assert speedup_vs_sequential >= 2.5, (
            f"workers={best} speedup {speedup_vs_sequential:.2f}x < 2.5x vs sequential"
        )
        lines.append("acceptance: workers=4 >= 2.5x vs the sequential path — holds")

    metrics = {
        "mode": "smoke" if _smoke() else "full",
        "n_nodes": graph.n_nodes,
        "n_edges": graph.n_edges,
        "n_queries": n_queries,
        "cpus": os.cpu_count(),
        "sequential_ms": t_seq.elapsed_ms,
        "batch_one_process_ms": t_batch.elapsed_ms,
        "shard_ms": {str(w): ms for w, ms in shard_ms.items()},
        "speedup_vs_sequential": speedup_vs_sequential,
        "speedup_vs_batch": speedup_vs_batch,
        "auto_parity_max_abs": auto_parity,
    }
    return "\n".join(lines), metrics


def test_bench_parallel(benchmark):
    graph, n_queries, worker_counts = _setup()
    text, metrics = benchmark.pedantic(
        run_parallel,
        args=(graph, n_queries, worker_counts),
        rounds=1,
        iterations=1,
    )
    report("parallel", text)
    report_json("parallel", metrics)


def _threaded_setup():
    """(graph, thread_counts, workers, repeats) for the threaded/row-shard leg."""
    if _smoke():
        graph = generate_bibnet(BibNetConfig(n_papers=300, n_authors=120, seed=13)).graph
        return graph, (1, 2), 2, 3
    # Efficiency-scale BibNet (fig. 11 size): wide X blows past L2, so the
    # sweep is gather-bound — the regime the threaded row split targets.
    graph = generate_bibnet(BibNetConfig(n_papers=14000, n_authors=4500, seed=13)).graph
    return graph, (1, 2, 4), 4, 10


def run_threaded(graph, thread_counts, workers, repeats) -> "tuple[str, dict]":
    """Threads-vs-walltime for the ``threaded`` kernel + row-sharded query.

    Leg one times one ``operator @ X`` sweep with ``REPRO_KERNEL_THREADS``
    in ``thread_counts`` at widths 1 (matvec-shaped) and 16 (the batch
    shape), asserting bit-equality against the scipy kernel before any
    timing is reported — the kernel's contract is "same bits, any thread
    count".  Leg two times one ``frank_vector`` solve sequentially and
    row-sharded at ``workers``; the routing threshold is forced low so the
    sharded path engages at every scale, and the speedup is only *asserted*
    on a multi-core full-mode run (a one-core host time-slices the shards,
    which the report says out loud instead of hiding).
    """
    top = get_operator(graph, transpose=True)
    rng = np.random.default_rng(41)
    lines = [
        "Threaded kernel + row-sharded single query (threads vs walltime)",
        f"graph: {graph.n_nodes} nodes / {graph.n_edges} arcs "
        f"({top.nnz} nnz); cpus: {os.cpu_count()}; "
        f"mode: {'smoke' if _smoke() else 'full'}",
        "",
        f"{'width':>6s} {'threads':>8s} {'per sweep':>12s} {'vs scipy':>9s}",
    ]

    kernel_ms: "dict[str, dict[str, float]]" = {}
    saved_threads = os.environ.get(KERNEL_THREADS_ENV_VAR)
    try:
        for q in (1, 16):
            x = rng.random((graph.n_nodes, q))
            out = np.empty_like(x)
            reference = np.empty_like(x)
            top.matmat(x, out=reference, kernel="scipy")  # warm + reference bits
            laps = []
            for _ in range(repeats):
                with Timer() as t:
                    for _ in range(3):
                        top.matmat(x, out=out, kernel="scipy")
                laps.append(t.elapsed_ms / 3)
            scipy_ms = min(laps)
            per_threads: "dict[str, float]" = {"scipy": scipy_ms}
            lines.append(f"{q:6d} {'scipy':>8s} {scipy_ms:9.2f} ms {'1.00x':>9s}")
            for threads in thread_counts:
                os.environ[KERNEL_THREADS_ENV_VAR] = str(threads)
                top.matmat(x, out=out, kernel="threaded")  # warm: partition prep
                assert np.array_equal(out, reference), (
                    f"threaded kernel diverged at width={q} threads={threads}"
                )
                laps = []
                for _ in range(repeats):
                    with Timer() as t:
                        for _ in range(3):
                            top.matmat(x, out=out, kernel="threaded")
                    laps.append(t.elapsed_ms / 3)
                per_threads[str(threads)] = min(laps)
                lines.append(
                    f"{q:6d} {threads:8d} {per_threads[str(threads)]:9.2f} ms "
                    f"{scipy_ms / per_threads[str(threads)]:8.2f}x"
                )
            kernel_ms[str(q)] = per_threads
    finally:
        if saved_threads is None:
            os.environ.pop(KERNEL_THREADS_ENV_VAR, None)
        else:
            os.environ[KERNEL_THREADS_ENV_VAR] = saved_threads

    # Leg two: one lone query, row-sharded across the process pool.  Force
    # the routing threshold low so the leg exercises the sharded path even
    # at smoke scale (the production default only routes big graphs).
    query = int(rng.choice(graph.n_nodes))
    saved_nnz = os.environ.get(ROWSHARD_MIN_NNZ_ENV_VAR)
    os.environ[ROWSHARD_MIN_NNZ_ENV_VAR] = "1"
    try:
        get_pool(workers)
        sequential = frank_vector(graph, query)
        sharded = frank_vector(graph, query, workers=workers)  # warm + parity
        route = active_route()
        assert route is not None and route.routed, f"row sharding did not engage: {route}"
        assert np.array_equal(sequential, sharded), "row-sharded solve must be bit-exact"
        with Timer() as t_seq:
            frank_vector(graph, query)
        with Timer() as t_shard:
            frank_vector(graph, query, workers=workers)
    finally:
        if saved_nnz is None:
            os.environ.pop(ROWSHARD_MIN_NNZ_ENV_VAR, None)
        else:
            os.environ[ROWSHARD_MIN_NNZ_ENV_VAR] = saved_nnz

    speedup = t_seq.elapsed_ms / t_shard.elapsed_ms
    lines.append("")
    lines.append(
        f"  single query, sequential:      {t_seq.elapsed_ms:9.1f} ms"
    )
    lines.append(
        f"  single query, workers={workers}:       {t_shard.elapsed_ms:9.1f} ms  "
        f"({speedup:5.2f}x; {route.shards} row shards, bit-exact)"
    )
    multi_core = (os.cpu_count() or 1) >= 2
    if not multi_core:
        lines.append(
            "  note: single-CPU host — the row shards time-slice one core, so "
            "this ratio measures pool dispatch overhead, not parallel scaling"
        )
    elif not _smoke():
        assert speedup >= 1.1, (
            f"workers={workers} single-query speedup {speedup:.2f}x < 1.1x "
            f"on a {os.cpu_count()}-cpu host"
        )
        lines.append(
            f"acceptance: workers={workers} beats the sequential single query — holds"
        )

    metrics = {
        "mode": "smoke" if _smoke() else "full",
        "n_nodes": graph.n_nodes,
        "n_edges": graph.n_edges,
        "nnz": top.nnz,
        "cpus": os.cpu_count(),
        "thread_counts": list(thread_counts),
        "kernel_ms": kernel_ms,
        "kernel_bit_exact": True,  # asserted above, for every width x threads
        "singlequery_workers": workers,
        "singlequery_shards": route.shards,
        "singlequery_sequential_ms": t_seq.elapsed_ms,
        "singlequery_sharded_ms": t_shard.elapsed_ms,
        "singlequery_speedup": speedup,
        "singlequery_bit_exact": True,  # asserted above
    }
    return "\n".join(lines), metrics


def test_bench_threaded(benchmark):
    graph, thread_counts, workers, repeats = _threaded_setup()
    text, metrics = benchmark.pedantic(
        run_threaded,
        args=(graph, thread_counts, workers, repeats),
        rounds=1,
        iterations=1,
    )
    report("threaded", text)
    report_json("threaded", metrics)
