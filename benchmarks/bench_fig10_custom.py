"""Fig. 10: RoundTripRank+ vs *customized* dual-sensed baselines (NDCG@5).

The paper gives every dual-sensed baseline the same benefit of a tunable
trade-off ("the customizations are implemented by us"): TCommute+,
ObjSqrtInv+, Harmonic+ and Arithmetic+ each get a beta tuned on the same
development queries as RoundTripRank+.  Expected shape (paper):
RoundTripRank+ still best (~+4% over TCommute+); baselines' runner-up spot
varies by task.
"""

from benchmarks.common import report
from repro.baselines import (
    ArithmeticPlusMeasure,
    HarmonicPlusMeasure,
    ObjSqrtInvPlusMeasure,
    RoundTripRankPlusMeasure,
    TCommutePlusMeasure,
)
from repro.eval import evaluate_measure, tune_beta

BETA_GRID = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


def run_fig10(tasks) -> str:
    measures = {
        "RoundTripRank+": RoundTripRankPlusMeasure(),
        "TCommute+": TCommutePlusMeasure(),
        "ObjSqrtInv+": ObjSqrtInvPlusMeasure(),
        "Harmonic+": HarmonicPlusMeasure(),
        "Arithmetic+": ArithmeticPlusMeasure(),
    }
    task_names = list(tasks["test"])
    table: dict[str, dict[str, float]] = {name: {} for name in measures}
    betas: dict[str, dict[str, float]] = {name: {} for name in measures}
    for task_name in task_names:
        dev = tasks["dev"][task_name]
        test = tasks["test"][task_name]
        for m_name, measure in measures.items():
            best_beta, _ = tune_beta(measure, dev, BETA_GRID, k=5)
            betas[m_name][task_name] = best_beta
            tuned = measure.with_beta(best_beta)
            result = evaluate_measure(tuned, test, (5,))
            table[m_name][task_name] = result.mean_ndcg(5)

    lines = ["Fig. 10 — NDCG@5 of RoundTripRank+ and customized dual baselines", ""]
    header = f"{'measure':16s}" + "".join(f"{t:>10s}" for t in task_names) + f"{'Average':>10s}"
    lines.append(header)
    for m_name in measures:
        values = [table[m_name][t] for t in task_names]
        avg = sum(values) / len(values)
        lines.append(
            f"{m_name:16s}"
            + "".join(f"{v:10.4f}" for v in values)
            + f"{avg:10.4f}"
        )
    lines.append("")
    lines.append("tuned beta* per measure and task:")
    for m_name in measures:
        lines.append(
            f"  {m_name:16s}"
            + "".join(f"{betas[m_name][t]:10.1f}" for t in task_names)
        )
    lines.append("")
    lines.append("paper shape: RoundTripRank+ best in every column even after")
    lines.append("giving each baseline the same tuned trade-off (~+4% over the")
    lines.append("runner-up on average); the runner-up varies across tasks.")
    return "\n".join(lines)


def test_fig10_customized(benchmark, tasks):
    text = benchmark.pedantic(run_fig10, args=(tasks,), rounds=1, iterations=1)
    report("fig10_custom", text)
