"""Distributed 2SBound: one active processor, striped graph processors.

Simulates the paper's Sect. V-B architecture in-process: the graph lives in
round-robin stripes across N graph processors; the active processor runs
2SBound, fetching only the adjacency it needs (the *active set*) over a
message-accounted network.  Shows that (a) results are identical to the
single-machine run and (b) the active set is a small fraction of the graph.

    python examples/distributed_demo.py
"""

import numpy as np

from repro.datasets import BibNetConfig, generate_bibnet
from repro.distributed import SimulatedCluster
from repro.topk import twosbound_topk


def main() -> None:
    print("generating synthetic bibliographic network ...")
    bibnet = generate_bibnet(BibNetConfig(n_papers=6000, n_authors=2000, seed=59))
    g = bibnet.graph
    print(f"  graph: {g.n_nodes} nodes / {g.n_edges} arcs "
          f"({g.memory_bytes / 1e6:.2f} MB under the cost model)")

    n_gps = 4
    cluster = SimulatedCluster(g, n_gps=n_gps)
    print(f"  cluster: 1 AP + {n_gps} GPs, "
          f"{cluster.total_gp_memory_bytes() / 1e6:.2f} MB striped across GPs")
    for gp in cluster.processors:
        print(f"    GP{gp.gp_id}: {gp.n_owned} nodes, "
              f"{gp.memory_bytes / 1e6:.2f} MB")

    rng = np.random.default_rng(2)
    queries = [int(q) for q in rng.choice(bibnet.paper_nodes, 5, replace=False)]

    print("\nquery            top-3 (distributed)      == local?   active set"
          "   messages   shipped")
    for q in queries:
        remote, stats = cluster.query(q, k=10, epsilon=0.01)
        local = twosbound_topk(g, q, k=10, epsilon=0.01)
        same = "yes" if remote.nodes == local.nodes else "NO"
        top3 = ", ".join(g.label_of(v)[:12] for v in remote.nodes[:3])
        print(
            f"{g.label_of(q)[:12]:15s}  {top3:24s} {same:>8s}"
            f"   {stats.active_set_bytes / 1e3:7.1f} KB"
            f"   {stats.messages:8d}   {stats.network_bytes / 1e3:6.1f} KB"
        )

    frac = stats.active_set_bytes / g.memory_bytes
    print(f"\nthe active set is ~{frac:.1%} of the graph: the AP never needs")
    print("the full graph in memory, which is what lets 2SBound scale out")
    print("(paper Sect. V-B, Fig. 12).")


if __name__ == "__main__":
    main()
