"""Venue search (the paper's Task B / Fig. 6-7 scenario).

Given a topic as a multi-word query ("spatio temporal data"), rank venues
three ways — importance-only, specificity-only, and RoundTripRank — on a
synthetic bibliographic network, reproducing the qualitative contrast of
the paper's Fig. 1/6/7: broad majors vs. focused workshops vs. a balance.

    python examples/venue_search.py
"""

import numpy as np

from repro.core import frank_vector, roundtriprank, trank_vector
from repro.datasets import BibNetConfig, generate_bibnet


def rank_venues(bibnet, scores: np.ndarray, k: int = 5) -> list[str]:
    """Top-k venue labels by a score vector."""
    mask = bibnet.graph.type_mask("venue")
    venue_ids = np.flatnonzero(mask)
    order = venue_ids[np.argsort(-scores[venue_ids], kind="stable")]
    return [bibnet.graph.label_of(int(v))[len("venue:"):] for v in order[:k]]


def show_query(bibnet, phrase: str) -> None:
    query = bibnet.term_query(phrase)
    print(f'\n=== venues for "{phrase}" (query = {len(query)} term nodes) ===')
    f = frank_vector(bibnet.graph, query)
    t = trank_vector(bibnet.graph, query)
    r = roundtriprank(bibnet.graph, query)
    columns = {
        "(a) importance (F-Rank)": rank_venues(bibnet, f),
        "(b) specificity (T-Rank)": rank_venues(bibnet, t),
        "(c) balanced (RoundTripRank)": rank_venues(bibnet, r),
    }
    width = max(len(name) for names in columns.values() for name in names) + 2
    print("".join(h.ljust(width + 8) for h in columns))
    for i in range(5):
        print("".join(names[i].ljust(width + 8) for names in columns.values()))


def main() -> None:
    print("generating synthetic bibliographic network ...")
    bibnet = generate_bibnet(BibNetConfig(n_papers=4000, n_authors=1200, seed=23))
    g = bibnet.graph
    print(f"  {g.n_nodes} nodes / {g.n_edges} arcs, "
          f"{len(bibnet.venue_nodes)} venues")

    # The two queries of the paper's Fig. 6 and Fig. 7.
    show_query(bibnet, "spatio temporal data")
    show_query(bibnet, "semantic web")

    print("\nExpected shape (cf. paper Fig. 6-7): importance-based ranking")
    print("surfaces the broad *_Major venues; specificity-based ranking the")
    print("Wkshp_* venues of the matching subtopic; RoundTripRank mixes both.")


if __name__ == "__main__":
    main()
