"""Online top-K with 2SBound: speed vs. exactness (the Sect. V story).

Compares the naive full-graph computation against 2SBound at several slack
values on a mid-size synthetic bibliographic network, reporting query time,
how much of the graph was explored, and ranking agreement with the exact
answer — a miniature of the paper's Fig. 11.

    python examples/topk_online.py
"""

import numpy as np

from repro.datasets import BibNetConfig, generate_bibnet
from repro.eval import kendall_tau_on_union, topk_overlap_precision
from repro.topk import naive_topk, twosbound_topk
from repro.utils.timer import Timer


def main() -> None:
    print("generating synthetic bibliographic network ...")
    bibnet = generate_bibnet(BibNetConfig(n_papers=6000, n_authors=2000, seed=41))
    g = bibnet.graph
    print(f"  {g.n_nodes} nodes / {g.n_edges} arcs")

    rng = np.random.default_rng(5)
    queries = [int(q) for q in rng.choice(bibnet.paper_nodes, 10, replace=False)]
    k = 10

    with Timer() as t_naive:
        exact = {q: naive_topk(g, q, k) for q in queries}
    naive_ms = t_naive.elapsed_ms / len(queries)
    print(f"\nnaive (full iterative): {naive_ms:7.1f} ms/query")

    print("\n2SBound:")
    print("epsilon   ms/query   explored   precision   kendall-tau")
    for epsilon in (0.001, 0.01, 0.02, 0.05):
        with Timer() as t_2sb:
            results = {q: twosbound_topk(g, q, k, epsilon=epsilon) for q in queries}
        ms = t_2sb.elapsed_ms / len(queries)
        explored = np.mean([r.seen_r for r in results.values()]) / g.n_nodes
        precision = np.mean(
            [
                topk_overlap_precision(results[q].nodes, exact[q].nodes, k)
                for q in queries
            ]
        )
        tau = np.mean(
            [
                kendall_tau_on_union(results[q].nodes, exact[q].nodes, k)
                for q in queries
            ]
        )
        print(
            f"{epsilon:7.3f}   {ms:8.1f}   {explored:7.1%}   {precision:9.3f}"
            f"   {tau:11.3f}"
        )

    print("\nSmaller epsilon = closer to exact but slower; the paper's")
    print("sweet spot (quality > 0.9 at a fraction of naive time) shows in")
    print("the middle rows.")


if __name__ == "__main__":
    main()
