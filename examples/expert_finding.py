"""Expert finding (the paper's Task A): who should review this paper?

Given a paper, rank authors by proximity.  The paper argues reviewers need
a *balance*: an important-but-broad professor may miss the latest
development, a hyper-specific student lacks authority.  We compare the
rankings produced by beta = 0 (importance), 0.5 (balanced) and 1
(specificity) and show how the balanced list mixes the two extremes.

    python examples/expert_finding.py
"""

import numpy as np

from repro.core import frank_vector, trank_vector
from repro.core.roundtrip_plus import combine_beta
from repro.datasets import BibNetConfig, generate_bibnet


def main() -> None:
    print("generating synthetic bibliographic network ...")
    bibnet = generate_bibnet(BibNetConfig(n_papers=4000, n_authors=1200, seed=31))
    g = bibnet.graph

    # Pick a paper with several authors as the submission under review.
    paper = next(
        p for p in bibnet.paper_nodes.tolist() if len(bibnet.paper_authors[p]) >= 3
    )
    subtopic = bibnet.subtopic_names[bibnet.paper_subtopic[paper]]
    print(f"submission: {g.label_of(paper)} (subtopic: {subtopic})")

    # Exclude the paper's own authors - they cannot review it.
    own_authors = set(bibnet.paper_authors[paper])
    author_mask = g.type_mask("author").copy()
    author_mask[list(own_authors)] = False
    candidates = np.flatnonzero(author_mask)

    f = frank_vector(g, paper)
    t = trank_vector(g, paper)

    print("\nrank  importance (b=0)   balanced (b=0.5)    specificity (b=1)")
    tops = {}
    for beta in (0.0, 0.5, 1.0):
        scores = combine_beta(f, t, beta)
        order = candidates[np.argsort(-scores[candidates], kind="stable")]
        tops[beta] = [g.label_of(int(a))[len("author:"):] for a in order[:8]]
    for i in range(8):
        print(f"{i + 1:3d}   {tops[0.0][i]:<18s} {tops[0.5][i]:<19s} {tops[1.0][i]}")

    balanced = set(tops[0.5])
    print(
        f"\nbalanced list shares {len(balanced & set(tops[0.0]))} reviewers with"
        f" the importance list and {len(balanced & set(tops[1.0]))} with the"
        " specificity list - the trade-off is real, not cosmetic."
    )

    # How productive are the top balanced reviewers? (an informal check
    # that the balance surfaces both senior and focused people)
    author_papers: dict[int, int] = {}
    for p, authors in bibnet.paper_authors.items():
        for a in authors:
            author_papers[a] = author_papers.get(a, 0) + 1
    label_to_id = {g.label_of(a)[len("author:"):]: a for a in candidates.tolist()}
    print("\nbalanced reviewers' productivity (papers authored):")
    for name in tops[0.5][:5]:
        print(f"  {name}: {author_papers.get(label_to_id[name], 0)} papers")


if __name__ == "__main__":
    main()
