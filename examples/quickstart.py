"""Quickstart: RoundTripRank on the paper's own toy graph (Fig. 2).

Runs in well under a second and shows the whole public API surface:
building a graph, computing F-Rank / T-Rank / RoundTripRank, customizing
the importance-specificity trade-off, and getting online top-K results.

    python examples/quickstart.py
"""

from repro.core import (
    frank_vector,
    roundtriprank,
    roundtriprank_plus,
    trank_vector,
)
from repro.datasets import toy_bibliographic_graph
from repro.topk import twosbound_topk


def main() -> None:
    # The Fig. 2 toy bibliographic network: 2 terms, 7 papers, 3 venues.
    graph = toy_bibliographic_graph()
    query = graph.node_by_label("t1")  # the term "spatio"

    # --- the three walk-based measures -------------------------------- #
    f = frank_vector(graph, query)     # importance  (reach v from q)
    t = trank_vector(graph, query)     # specificity (return to q from v)
    r = roundtriprank(graph, query)    # both, in one coherent round trip

    venues = [graph.node_by_label(v) for v in ("v1", "v2", "v3")]
    print("venue  F-Rank   T-Rank   RoundTripRank")
    for v in venues:
        print(
            f"{graph.label_of(v):5s}  {f[v]:.4f}   {t[v]:.4f}   {r[v]:.4f}"
        )
    print()
    print("v1 is important but accepts off-topic papers; v3 is specific but")
    print("small; v2 is both - and RoundTripRank ranks it first:")
    best = max(venues, key=lambda v: r[v])
    print("  best venue:", graph.label_of(best))
    assert graph.label_of(best) == "v2"

    # --- customizing the trade-off (RoundTripRank+) -------------------- #
    print()
    print("beta   top venue   (0 = importance only ... 1 = specificity only)")
    for beta in (0.0, 0.25, 0.5, 0.75, 1.0):
        scores = roundtriprank_plus(graph, query, beta=beta)
        best = max(venues, key=lambda v: scores[v])
        print(f"{beta:.2f}   {graph.label_of(best)}")

    # --- online top-K without touching the whole graph ----------------- #
    print()
    result = twosbound_topk(graph, query, k=5, epsilon=0.0)
    print("2SBound top-5:", [graph.label_of(v) for v in result.nodes])
    print(f"(converged in {result.rounds} rounds, exploring "
          f"{result.seen_r} of {graph.n_nodes} nodes)")


if __name__ == "__main__":
    main()
