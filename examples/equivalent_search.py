"""Equivalent-query mining (the paper's Task D) on a synthetic click graph.

Given a search phrase, find phrasings of the *same concept* ("google mail"
vs "gmail" in the paper; here "apple ipod" vs "the ipod of apple").  The
paper's Fig. 8 finds this task wants a specificity-leaning bias
(beta* > 0.5): equivalent phrases ideally denote the exact same concept.
We sweep beta and measure NDCG@5 against the generator's ground truth.

    python examples/equivalent_search.py
"""

import numpy as np

from repro.baselines import RoundTripRankPlusMeasure
from repro.datasets import QLogConfig, generate_qlog
from repro.eval import evaluate_measure, make_equivalent_task


def main() -> None:
    print("generating synthetic query log ...")
    qlog = generate_qlog(QLogConfig(n_concepts=400, seed=17))
    g = qlog.graph
    print(f"  {g.n_nodes} nodes / {g.n_edges} arcs")

    # A concrete query and its discovered equivalents.
    task = make_equivalent_task(qlog, 40, seed=3)
    case = max(task.cases, key=lambda c: len(c.ground_truth))
    print(f'\nquery phrase : "{qlog.phrase_text[case.query]}"')
    print("true equivalents:")
    for p in case.ground_truth:
        print(f'  - "{qlog.phrase_text[p]}"')

    measure = RoundTripRankPlusMeasure(beta=0.75)
    scores = measure.scores(case.graph, case.query)
    mask = case.candidate_mask.copy()
    mask[list(case.excluded)] = False
    ranked = np.flatnonzero(mask)
    ranked = ranked[np.argsort(-scores[ranked], kind="stable")][:5]
    print("RoundTripRank+ (beta=0.75) top-5 phrases:")
    for p in ranked:
        hit = "  <-- equivalent" if p in case.ground_truth else ""
        print(f'  "{qlog.phrase_text[int(p)]}"{hit}')

    # Beta sweep over the whole task (the Fig. 8(d) shape).
    print("\nbeta sweep, mean NDCG@5 over", len(task.cases), "queries:")
    best_beta, best_score = 0.0, -1.0
    for beta in np.round(np.linspace(0.0, 1.0, 11), 2):
        result = evaluate_measure(measure.with_beta(float(beta)), task, (5,))
        score = result.mean_ndcg(5)
        bar = "#" * int(score * 40)
        print(f"  beta={beta:4.2f}  {score:.4f}  {bar}")
        if score > best_score:
            best_beta, best_score = float(beta), score
    print(f"\nbest beta = {best_beta} (paper's Fig. 8(d): beta* > 0.5,")
    print("equivalent phrases are inherently specific to each other)")


if __name__ == "__main__":
    main()
